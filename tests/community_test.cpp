#include "symbolic/community_set.hpp"

#include <gtest/gtest.h>

#include "ir/frontend.hpp"
#include "net/community.hpp"

namespace expresso::symbolic {
namespace {

using net::Community;
using net::CommunityMatcher;

TEST(CommunityTest, ParseAndPrint) {
  auto c = Community::parse("300:100");
  ASSERT_TRUE(c);
  EXPECT_EQ(c->high, 300);
  EXPECT_EQ(c->low, 100);
  EXPECT_EQ(c->to_string(), "300:100");
  EXPECT_FALSE(Community::parse("300"));
  EXPECT_FALSE(Community::parse("300:70000"));
  EXPECT_FALSE(Community::parse("300:100x"));
}

TEST(CommunityMatcherTest, ExactWildcardAndClass) {
  auto exact = CommunityMatcher::parse("300:100");
  ASSERT_TRUE(exact);
  EXPECT_TRUE(exact->matches(*Community::parse("300:100")));
  EXPECT_FALSE(exact->matches(*Community::parse("300:1000")));
  EXPECT_FALSE(exact->matches(*Community::parse("301:100")));

  auto any = CommunityMatcher::parse("300:*");
  ASSERT_TRUE(any);
  EXPECT_TRUE(any->matches(*Community::parse("300:1")));
  EXPECT_TRUE(any->matches(*Community::parse("300:65535")));
  EXPECT_FALSE(any->matches(*Community::parse("200:1")));

  // The paper's own example: 300:[1-9]00.
  auto cls = CommunityMatcher::parse("300:[1-9]00");
  ASSERT_TRUE(cls);
  EXPECT_TRUE(cls->matches(*Community::parse("300:100")));
  EXPECT_TRUE(cls->matches(*Community::parse("300:900")));
  EXPECT_FALSE(cls->matches(*Community::parse("300:1000")));
  EXPECT_FALSE(cls->matches(*Community::parse("300:10")));

  EXPECT_FALSE(CommunityMatcher::parse("abc"));
  EXPECT_FALSE(CommunityMatcher::parse("300:[1-]00"));
}

std::vector<ir::RouterConfig> paper_atom_configs() {
  // Section 4.2's community-atom example: patterns 300:100 and 300:[1-9]00
  // yield three atoms: c1 = 300:100, c2 = 300:[2-9]00, c3 = everything else.
  const char* text = R"(
router R
 bgp as 1
 route-policy p permit node 10
  if-match community 300:100
 route-policy p permit node 20
  if-match community 300:[1-9]00
  add-community 300:100
 bgp peer E AS 2 import p
)";
  return ir::parse_configs(text);
}

TEST(AtomizerTest, PaperExampleYieldsThreeAtoms) {
  const auto cfgs = paper_atom_configs();
  CommunityAtomizer atomizer(cfgs);
  EXPECT_EQ(atomizer.num_atoms(), 3u);

  const auto exact = *CommunityMatcher::parse("300:100");
  const auto cls = *CommunityMatcher::parse("300:[1-9]00");
  const auto a_exact = atomizer.atoms_of(exact);
  const auto a_cls = atomizer.atoms_of(cls);
  ASSERT_EQ(a_exact.size(), 1u);  // c1
  ASSERT_EQ(a_cls.size(), 2u);    // c1 and c2
  EXPECT_EQ(atomizer.atom_of(*Community::parse("300:100")), a_exact[0]);
  // 300:500 belongs to the class atom but not the exact atom.
  const auto a500 = atomizer.atom_of(*Community::parse("300:500"));
  EXPECT_NE(a500, a_exact[0]);
  EXPECT_TRUE(a500 == a_cls[0] || a500 == a_cls[1]);
  // An unrelated community falls into the "others" atom.
  const auto other = atomizer.atom_of(*Community::parse("17:29"));
  EXPECT_NE(other, a_exact[0]);
  EXPECT_NE(other, a500);
}

class CommunitySetTest : public ::testing::TestWithParam<CommunityRep> {
 protected:
  CommunitySetTest() : enc_(2, 3) {}
  Encoding enc_;
};

TEST_P(CommunitySetTest, UniversalAndNone) {
  const auto rep = GetParam();
  auto all = CommunitySet::universal(enc_, rep);
  auto none = CommunitySet::none(enc_, rep);
  EXPECT_FALSE(all.is_empty());
  EXPECT_FALSE(none.is_empty());
  EXPECT_FALSE(all == none);
  // The universal set may contain any atom; {∅} contains none.
  for (std::uint32_t a = 0; a < 3; ++a) {
    EXPECT_TRUE(all.may_contain(enc_, a));
    EXPECT_FALSE(none.may_contain(enc_, a));
  }
}

TEST_P(CommunitySetTest, AddRemoveAtomRoundTrip) {
  const auto rep = GetParam();
  auto none = CommunitySet::none(enc_, rep);
  auto with1 = none.with_atom(enc_, 1);
  EXPECT_TRUE(with1.may_contain(enc_, 1));
  EXPECT_FALSE(with1.may_contain(enc_, 0));
  auto back = with1.without_atom(enc_, 1);
  EXPECT_TRUE(back == none);
  // Adding twice is idempotent.
  EXPECT_TRUE(with1.with_atom(enc_, 1) == with1);
}

TEST_P(CommunitySetTest, PaperAdditionExample) {
  // Section 4.2: adding 300:100 (atom c1) to C = 2^{c1,c2,c3} gives every
  // set that contains c1.
  const auto rep = GetParam();
  auto all = CommunitySet::universal(enc_, rep);
  auto added = all.with_atom(enc_, 0);
  // Every member contains c1: matching on c1 changes nothing...
  EXPECT_TRUE(added.matching_any(enc_, {0}) == added);
  // ...and no member is without c1.
  EXPECT_TRUE(added.matching_none(enc_, {0}).is_empty());
  // Other atoms remain free.
  EXPECT_TRUE(added.may_contain(enc_, 1));
  EXPECT_FALSE(added.matching_none(enc_, {1}).is_empty());
}

TEST_P(CommunitySetTest, MatchSplitsCompletely) {
  const auto rep = GetParam();
  auto all = CommunitySet::universal(enc_, rep);
  auto hit = all.matching_any(enc_, {0, 2});
  auto miss = all.matching_none(enc_, {0, 2});
  EXPECT_FALSE(hit.is_empty());
  EXPECT_FALSE(miss.is_empty());
  // The split is disjoint: members of `hit` contain atom 0 or 2; members of
  // `miss` contain neither.
  EXPECT_TRUE(miss.matching_any(enc_, {0}).is_empty());
  EXPECT_TRUE(miss.matching_any(enc_, {2}).is_empty());
  EXPECT_TRUE(miss.may_contain(enc_, 1));
}

TEST_P(CommunitySetTest, ErasedCollapsesToEmptyList) {
  const auto rep = GetParam();
  auto s = CommunitySet::universal(enc_, rep).with_atom(enc_, 2);
  auto e = s.erased(enc_);
  EXPECT_TRUE(e == CommunitySet::none(enc_, rep));
  // A community-matching deny clause no longer fires after erasure — the
  // figure 4 route-leak mechanism.
  EXPECT_TRUE(e.matching_any(enc_, {2}).is_empty());
}

TEST_P(CommunitySetTest, HashAgreesWithEquality) {
  const auto rep = GetParam();
  auto a = CommunitySet::none(enc_, rep).with_atom(enc_, 0).with_atom(enc_, 1);
  auto b = CommunitySet::none(enc_, rep).with_atom(enc_, 1).with_atom(enc_, 0);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.hash(), b.hash());
}

INSTANTIATE_TEST_SUITE_P(Reps, CommunitySetTest,
                         ::testing::Values(CommunityRep::kAtomBdd,
                                           CommunityRep::kAutomaton));

// Cross-representation consistency: the two representations must agree on
// every sequence of operations.
TEST(CommunitySetCrossTest, RepresentationsAgree) {
  Encoding enc(1, 4);
  auto b = CommunitySet::universal(enc, CommunityRep::kAtomBdd);
  auto d = CommunitySet::universal(enc, CommunityRep::kAutomaton);
  struct Op {
    int kind;  // 0 add, 1 del, 2 match_any, 3 match_none
    std::uint32_t atom;
  };
  const std::vector<Op> script = {{0, 1}, {2, 1}, {1, 3}, {3, 3},
                                  {0, 0}, {2, 0}, {1, 0}, {3, 0}};
  for (const auto& op : script) {
    switch (op.kind) {
      case 0:
        b = b.with_atom(enc, op.atom);
        d = d.with_atom(enc, op.atom);
        break;
      case 1:
        b = b.without_atom(enc, op.atom);
        d = d.without_atom(enc, op.atom);
        break;
      case 2:
        b = b.matching_any(enc, {op.atom});
        d = d.matching_any(enc, {op.atom});
        break;
      case 3:
        b = b.matching_none(enc, {op.atom});
        d = d.matching_none(enc, {op.atom});
        break;
    }
    EXPECT_EQ(b.is_empty(), d.is_empty());
    for (std::uint32_t a = 0; a < 4; ++a) {
      EXPECT_EQ(b.may_contain(enc, a), d.may_contain(enc, a))
          << "atom " << a;
    }
  }
}

}  // namespace
}  // namespace expresso::symbolic
