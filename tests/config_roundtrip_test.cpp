// Frontend round-trip property, for *every* dialect: parsing a config to
// the IR and pushing that IR through any frontend D must satisfy
// parse_D(emit_D(x)) == x, and emission must be a fixpoint
// (emit_D . parse_D . emit_D == emit_D).  Driven both by the fuzz
// generator's randomized configs (which cover the whole semantic model,
// including degenerate shapes like empty policies and references to
// undefined policy names) and by hand-written configs exercising every
// statement each frontend knows.
#include <gtest/gtest.h>

#include "fuzz/generator.hpp"
#include "ir/frontend.hpp"

namespace expresso::ir {
namespace {

constexpr Dialect kAllDialects[] = {Dialect::kHuawei, Dialect::kRpsl};

// Parses `text` (auto-detected dialect) and round-trips the resulting IR
// through every frontend.
void expect_roundtrip(const std::string& text) {
  const std::vector<RouterConfig> ast1 = parse_configs(text);
  for (const Dialect d : kAllDialects) {
    const Frontend& fe = frontend(d);
    const std::string text2 = fe.emit(ast1);
    EXPECT_EQ(detect_dialect(text2), d);
    const std::vector<RouterConfig> ast2 = fe.parse(text2);
    EXPECT_EQ(ast1, ast2) << "dialect: " << fe.name() << "\noriginal:\n"
                          << text << "re-emitted:\n"
                          << text2;
    EXPECT_EQ(text2, fe.emit(ast2)) << "dialect: " << fe.name();
  }
}

TEST(ConfigRoundTrip, RandomizedConfigs) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    expect_roundtrip(fuzz::generate_scenario(seed).config_text);
  }
}

TEST(ConfigRoundTrip, RandomizedConfigsEmittedAsRpsl) {
  // The generator emits through the RPSL frontend; replaying the text
  // through auto-detection must sniff the dialect and land on the same IR.
  fuzz::GenOptions opt;
  opt.dialect = Dialect::kRpsl;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const auto s = fuzz::generate_scenario(seed, opt);
    EXPECT_EQ(detect_dialect(s.config_text), Dialect::kRpsl);
    expect_roundtrip(s.config_text);
  }
}

TEST(ConfigRoundTrip, SameSeedYieldsSameIrInEveryDialect) {
  fuzz::GenOptions rpsl;
  rpsl.dialect = Dialect::kRpsl;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const auto a = fuzz::generate_scenario(seed);
    const auto b = fuzz::generate_scenario(seed, rpsl);
    EXPECT_EQ(parse_configs(a.config_text, Dialect::kHuawei),
              parse_configs(b.config_text, Dialect::kRpsl))
        << "seed " << seed;
  }
}

TEST(ConfigRoundTrip, EveryStatementKind) {
  expect_roundtrip(
      "router PR1\n"
      " bgp as 300\n"
      " bgp network 10.0.0.0/16\n"
      " bgp aggregate 10.0.0.0/8\n"
      " bgp import-route static\n"
      " bgp import-route connected\n"
      " route-policy im1 permit node 100\n"
      "  if-match prefix 100.0.0.0/8 110.0.0.0/8 ge 16 le 24\n"
      "  if-match community 300:100 300:[1-9]00\n"
      "  if-match as-path \"100.*\"\n"
      "  set-local-preference 200\n"
      "  add-community 300:100\n"
      "  delete-community 300:101\n"
      "  prepend-as 300\n"
      " route-policy im1 deny node 200\n"
      "  if-match community 300:666\n"
      " route-policy empty permit node 10\n"
      " bgp peer ISP1 AS 100 import im1 export ghost\n"
      " bgp peer PR2 AS 300 advertise-community\n"
      " bgp peer DC AS 65500 advertise-default\n"
      " bgp peer PRx AS 300 rr-client\n"
      " static 10.1.0.0/16 next-hop PR2\n"
      " static 10.3.0.0/16 next-hop NOWHERE\n"
      " interface prefix 10.0.9.0/31\n"
      "router PR2\n"
      " bgp as 300\n"
      " bgp peer PR1 AS 300\n"
      " bgp peer PR2 AS 300\n");  // self-loop session
}

TEST(ConfigRoundTrip, EveryRpslStatementKind) {
  expect_roundtrip(
      "hostname PR1\n"
      "router bgp 300\n"
      "prefix-set ps members { 100.0.0.0/8, 110.0.0.0/8^16-24 }\n"
      "community-set cs members { 300:100, 300:[1-9]00, no-export }\n"
      "route-map im1 permit 100\n"
      " match prefix-set ps\n"
      " match community-set cs\n"
      " match as-path \"100.*\"\n"
      " set local-preference 200\n"
      " set community add 300:100 no-advertise\n"
      " set community delete 300:101\n"
      " set as-path prepend 300\n"
      "route-map im1 deny 200\n"
      " match community-set cs\n"
      "network 10.0.0.0/16\n"
      "aggregate-address 10.0.0.0/8\n"
      "redistribute static\n"
      "redistribute connected\n"
      "neighbor ISP1 remote-as 100\n"
      "neighbor ISP1 route-map im1 in\n"
      "neighbor ISP1 route-map ghost out\n"
      "neighbor PR2 remote-as 300\n"
      "neighbor PR2 send-community\n"
      "neighbor DC remote-as 65500\n"
      "neighbor DC default-originate\n"
      "neighbor PRx remote-as 300\n"
      "neighbor PRx route-reflector-client\n"
      "ip route 10.1.0.0/16 PR2\n"
      "interface 10.0.9.0/31\n"
      "hostname PR2\n"
      "router bgp 300\n"
      "neighbor PR1 remote-as 300\n"
      "neighbor PR2 remote-as 300\n");  // self-loop session
}

TEST(ConfigRoundTrip, RpslLengthModifiers) {
  const auto cfgs = parse_configs(
      "hostname R\n"
      "router bgp 1\n"
      "prefix-set ps members 10.0.0.0/8 10.0.0.0/8^+ 10.0.0.0/8^- "
      "10.0.0.0/8^24 10.0.0.0/8^24-28\n"
      "route-map p permit 10\n"
      " match prefix-set ps\n"
      "neighbor E remote-as 2\n"
      "neighbor E route-map p in\n");
  const auto& mp = cfgs[0].policies.at("p")[0].match_prefixes;
  ASSERT_EQ(mp.size(), 5u);
  EXPECT_EQ(mp[0].ge, 8);   // bare: exact
  EXPECT_EQ(mp[0].le, 8);
  EXPECT_EQ(mp[1].ge, 8);   // ^+: itself and more-specifics
  EXPECT_EQ(mp[1].le, 32);
  EXPECT_EQ(mp[2].ge, 9);   // ^-: strictly more-specific
  EXPECT_EQ(mp[2].le, 32);
  EXPECT_EQ(mp[3].ge, 24);  // ^24: exactly /24
  EXPECT_EQ(mp[3].le, 24);
  EXPECT_EQ(mp[4].ge, 24);  // ^24-28
  EXPECT_EQ(mp[4].le, 28);
  expect_roundtrip(emit(cfgs, Dialect::kRpsl));
}

TEST(ConfigRoundTrip, RpslWellKnownCommunities) {
  const auto cfgs = parse_configs(
      "hostname R\n"
      "router bgp 1\n"
      "community-set cs members no-export no-advertise\n"
      "route-map p permit 10\n"
      " match community-set cs\n"
      " set community add no-export\n"
      "neighbor E remote-as 2\n"
      "neighbor E route-map p in\n");
  const auto& clause = cfgs[0].policies.at("p")[0];
  ASSERT_EQ(clause.match_communities.size(), 2u);
  EXPECT_EQ(clause.match_communities[0].pattern(), "65535:65281");
  EXPECT_EQ(clause.match_communities[1].pattern(), "65535:65282");
  ASSERT_EQ(clause.add_communities.size(), 1u);
  EXPECT_EQ(clause.add_communities[0].to_string(), "65535:65281");
  // The emitter prefers the aliases back.
  const std::string text = emit(cfgs, Dialect::kRpsl);
  EXPECT_NE(text.find("no-export"), std::string::npos);
  EXPECT_NE(text.find("no-advertise"), std::string::npos);
}

TEST(ConfigRoundTrip, RpslAsOriginSetDesugarsToRegex) {
  const auto cfgs = parse_configs(
      "hostname R\n"
      "router bgp 1\n"
      "as-set customers members { 100, 200 }\n"
      "as-set solo members 300\n"
      "route-map p permit 10\n"
      " match as-origin-set customers\n"
      "route-map q deny 10\n"
      " match as-origin-set solo\n"
      "neighbor E remote-as 2\n"
      "neighbor E route-map p in\n"
      "neighbor E route-map q out\n");
  EXPECT_EQ(cfgs[0].policies.at("p")[0].match_as_path, ".*(100|200)");
  EXPECT_EQ(cfgs[0].policies.at("q")[0].match_as_path, ".*300");
  // Sugar only: the IR round-trips through the plain as-path form.
  expect_roundtrip(emit(cfgs, Dialect::kRpsl));
}

TEST(ConfigRoundTrip, RpslRejectsMalformedInput) {
  EXPECT_THROW(parse_configs("hostname R\nrouter ospf 1\n"), ParseError);
  EXPECT_THROW(parse_configs("hostname R\nrouter bgp 1\n"
                             "route-map p permit 10\n"
                             " match prefix-set nope\n"),
               ParseError);  // undefined set
  EXPECT_THROW(parse_configs("hostname R\nrouter bgp 1\n"
                             "neighbor E route-map p in\n"),
               ParseError);  // neighbor without remote-as
  EXPECT_THROW(parse_configs("hostname R\nrouter bgp 1\n"
                             "prefix-set ps members 10.0.0.0/8^4-8\n"),
               ParseError);  // window below the base length
  EXPECT_THROW(parse_configs("hostname R\nrouter bgp 1\n"
                             "prefix-set ps members 10.0.0.0/8^24-40\n"),
               ParseError);  // length > 32
  EXPECT_THROW(parse_configs("hostname R\n match as-path \".*\"\n"),
               ParseError);  // match outside any route-map
}

TEST(ConfigRoundTrip, AstEqualityIsStructural) {
  const std::string text =
      "router R0\n bgp as 65000\n"
      " route-policy p permit node 10\n  set-local-preference 200\n"
      " bgp peer ISPa AS 100 import p\n";
  auto a = parse_configs(text);
  auto b = parse_configs(text);
  EXPECT_EQ(a, b);
  b[0].peers[0].advertise_community = true;
  EXPECT_NE(a, b);
  b = parse_configs(text);
  b[0].policies["p"][0].set_local_preference = 300;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace expresso::ir
