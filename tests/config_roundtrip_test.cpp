// Round-trip property: serialize(parse(x)) re-parses to a structurally equal
// AST, and serialization is a fixpoint (serialize . parse . serialize ==
// serialize).  Driven both by the fuzz generator's randomized configs (which
// cover the whole dialect, including degenerate shapes like empty policies
// and references to undefined policy names) and by a hand-written config
// exercising every statement the parser knows.
#include <gtest/gtest.h>

#include "config/ast.hpp"
#include "config/parser.hpp"
#include "fuzz/generator.hpp"

namespace expresso::config {
namespace {

void expect_roundtrip(const std::string& text) {
  const std::vector<RouterConfig> ast1 = parse_configs(text);
  const std::string text2 = serialize(ast1);
  const std::vector<RouterConfig> ast2 = parse_configs(text2);
  EXPECT_EQ(ast1, ast2) << "original:\n" << text << "re-serialized:\n"
                        << text2;
  EXPECT_EQ(text2, serialize(ast2));
}

TEST(ConfigRoundTrip, RandomizedConfigs) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    expect_roundtrip(fuzz::generate_scenario(seed).config_text);
  }
}

TEST(ConfigRoundTrip, EveryStatementKind) {
  expect_roundtrip(
      "router PR1\n"
      " bgp as 300\n"
      " bgp network 10.0.0.0/16\n"
      " bgp aggregate 10.0.0.0/8\n"
      " bgp import-route static\n"
      " bgp import-route connected\n"
      " route-policy im1 permit node 100\n"
      "  if-match prefix 100.0.0.0/8 110.0.0.0/8 ge 16 le 24\n"
      "  if-match community 300:100 300:[1-9]00\n"
      "  if-match as-path \"100.*\"\n"
      "  set-local-preference 200\n"
      "  add-community 300:100\n"
      "  delete-community 300:101\n"
      "  prepend-as 300\n"
      " route-policy im1 deny node 200\n"
      "  if-match community 300:666\n"
      " route-policy empty permit node 10\n"
      " bgp peer ISP1 AS 100 import im1 export ghost\n"
      " bgp peer PR2 AS 300 advertise-community\n"
      " bgp peer DC AS 65500 advertise-default\n"
      " bgp peer PRx AS 300 rr-client\n"
      " static 10.1.0.0/16 next-hop PR2\n"
      " static 10.3.0.0/16 next-hop NOWHERE\n"
      " interface prefix 10.0.9.0/31\n"
      "router PR2\n"
      " bgp as 300\n"
      " bgp peer PR1 AS 300\n"
      " bgp peer PR2 AS 300\n");  // self-loop session
}

TEST(ConfigRoundTrip, AstEqualityIsStructural) {
  const std::string text =
      "router R0\n bgp as 65000\n"
      " route-policy p permit node 10\n  set-local-preference 200\n"
      " bgp peer ISPa AS 100 import p\n";
  auto a = parse_configs(text);
  auto b = parse_configs(text);
  EXPECT_EQ(a, b);
  b[0].peers[0].advertise_community = true;
  EXPECT_NE(a, b);
  b = parse_configs(text);
  b[0].policies["p"][0].set_local_preference = 300;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace expresso::config
