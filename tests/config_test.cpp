#include "ir/frontend.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace expresso::ir {
namespace {

const char* kFig4 = R"(
// ---------- Configuration of PR1 ----------
router PR1
 bgp as 300
 route-policy im1 permit node 100
  if-match prefix 128.0.0.0/2 192.0.0.0/2
  set-local-preference 200
  add-community 300:100
 route-policy ex1 deny node 100
  if-match community 300:100
 route-policy ex1 permit node 200
 bgp peer ISP1 AS 100 import im1 export ex1
 bgp peer PR2 AS 300
# ---------- Configuration of PR2 ----------
router PR2
 bgp as 300
 route-policy im2 permit node 100
  if-match prefix 128.0.0.0/2 192.0.0.0/2
  add-community 300:100
 route-policy ex2 deny node 100
  if-match community 300:100
 route-policy ex2 permit node 200
 bgp network 0.0.0.0/2
 bgp peer ISP2 AS 200 import im2 export ex2
 bgp peer PR1 AS 300 advertise-community
)";

TEST(ParserTest, ParsesFigure4Network) {
  const auto cfgs = parse_configs(kFig4);
  ASSERT_EQ(cfgs.size(), 2u);

  const RouterConfig& pr1 = cfgs[0];
  EXPECT_EQ(pr1.name, "PR1");
  EXPECT_EQ(pr1.asn, 300u);
  ASSERT_EQ(pr1.policies.size(), 2u);
  const auto& im1 = pr1.policies.at("im1");
  ASSERT_EQ(im1.size(), 1u);
  EXPECT_TRUE(im1[0].permit);
  ASSERT_EQ(im1[0].match_prefixes.size(), 2u);
  EXPECT_EQ(im1[0].match_prefixes[0].base.to_string(), "128.0.0.0/2");
  EXPECT_EQ(im1[0].set_local_preference, 200u);
  ASSERT_EQ(im1[0].add_communities.size(), 1u);
  EXPECT_EQ(im1[0].add_communities[0].to_string(), "300:100");

  const auto& ex1 = pr1.policies.at("ex1");
  ASSERT_EQ(ex1.size(), 2u);
  EXPECT_FALSE(ex1[0].permit);
  ASSERT_EQ(ex1[0].match_communities.size(), 1u);
  EXPECT_TRUE(ex1[1].permit);

  ASSERT_EQ(pr1.peers.size(), 2u);
  EXPECT_EQ(pr1.peers[0].peer, "ISP1");
  EXPECT_EQ(pr1.peers[0].peer_as, 100u);
  EXPECT_EQ(pr1.peers[0].import_policy, "im1");
  EXPECT_EQ(pr1.peers[0].export_policy, "ex1");
  EXPECT_FALSE(pr1.peers[1].advertise_community);

  const RouterConfig& pr2 = cfgs[1];
  ASSERT_EQ(pr2.networks.size(), 1u);
  EXPECT_EQ(pr2.networks[0].to_string(), "0.0.0.0/2");
  EXPECT_TRUE(pr2.peers[1].advertise_community);
}

TEST(ParserTest, RoundTripsThroughSerializer) {
  const auto cfgs = parse_configs(kFig4);
  const std::string text = emit(cfgs, Dialect::kHuawei);
  const auto reparsed = parse_configs(text);
  ASSERT_EQ(reparsed.size(), cfgs.size());
  // Semantic spot checks survive the round trip.
  EXPECT_EQ(emit(reparsed, Dialect::kHuawei), text);  // emitter is a fixpoint
  EXPECT_EQ(reparsed[0].policies.at("im1")[0].set_local_preference, 200u);
  EXPECT_EQ(reparsed[1].peers[1].advertise_community, true);
}

TEST(ParserTest, ParsesSessionOptionsAndRoutes) {
  const char* text = R"(
router R
 bgp as 65000
 bgp import-route static
 bgp import-route connected
 bgp peer X AS 65000 rr-client advertise-community
 bgp peer DC AS 65500 advertise-default
 static 10.1.0.0/16 next-hop X
 interface prefix 10.0.9.0/31
)";
  const auto cfgs = parse_configs(text);
  ASSERT_EQ(cfgs.size(), 1u);
  EXPECT_TRUE(cfgs[0].redistribute_static);
  EXPECT_TRUE(cfgs[0].redistribute_connected);
  EXPECT_TRUE(cfgs[0].peers[0].rr_client);
  EXPECT_TRUE(cfgs[0].peers[1].advertise_default);
  ASSERT_EQ(cfgs[0].statics.size(), 1u);
  EXPECT_EQ(cfgs[0].statics[0].prefix.to_string(), "10.1.0.0/16");
  EXPECT_EQ(cfgs[0].statics[0].next_hop, "X");
  ASSERT_EQ(cfgs[0].connected.size(), 1u);
  EXPECT_EQ(cfgs[0].connected[0].to_string(), "10.0.9.0/31");
}

TEST(ParserTest, ParsesGeLeWindows) {
  const char* text = R"(
router R
 bgp as 1
 route-policy p permit node 10
  if-match prefix 10.0.0.0/16 ge 24 le 28 10.1.0.0/16 ge 20
 bgp peer E AS 2 import p
)";
  const auto cfgs = parse_configs(text);
  const auto& mp = cfgs[0].policies.at("p")[0].match_prefixes;
  ASSERT_EQ(mp.size(), 2u);
  EXPECT_EQ(mp[0].ge, 24);
  EXPECT_EQ(mp[0].le, 28);
  EXPECT_EQ(mp[1].ge, 20);
  EXPECT_EQ(mp[1].le, 32);  // ge without le implies le 32
}

TEST(ParserTest, ParsesAsPathRegexAndPrepend) {
  const char* text = R"(
router R
 bgp as 1
 route-policy p permit node 10
  if-match as-path ".*400"
  prepend-as 1
 bgp peer E AS 2 import p
)";
  const auto cfgs = parse_configs(text);
  const auto& clause = cfgs[0].policies.at("p")[0];
  EXPECT_EQ(clause.match_as_path, ".*400");
  EXPECT_EQ(clause.prepend_as, 1u);
}

TEST(ParserTest, RejectsMalformedInput) {
  EXPECT_THROW(parse_configs("bogus"), ParseError);
  EXPECT_THROW(parse_configs("bgp as 1"), ParseError);  // outside router
  EXPECT_THROW(parse_configs("router R\n bgp peer X 100"), ParseError);
  EXPECT_THROW(parse_configs("router R\n static 10.0.0.0/8 via X"),
               ParseError);
  EXPECT_THROW(parse_configs("router R\n route-policy p permit node 1\n"
                             "  if-match prefix 10.0.0.0/40"),
               ParseError);
  EXPECT_THROW(parse_configs("router R\n route-policy p permit node 1\n"
                             "  if-match community 300"),
               ParseError);
  EXPECT_THROW(parse_configs("router R\n if-match prefix 1.0.0.0/8"),
               ParseError);
}

TEST(NetworkTest, BuildsTopologyFromFigure4) {
  auto net = net::Network::build(parse_configs(kFig4));
  EXPECT_EQ(net.num_internal(), 2u);
  EXPECT_EQ(net.num_external(), 2u);

  const auto pr1 = net.find("PR1");
  const auto isp1 = net.find("ISP1");
  ASSERT_TRUE(pr1 && isp1);
  EXPECT_FALSE(net.node(*pr1).external);
  EXPECT_TRUE(net.node(*isp1).external);
  EXPECT_EQ(net.node(*isp1).asn, 100u);

  // 3 sessions x 2 directions.
  EXPECT_EQ(net.edges().size(), 6u);
  // The PR1 -> PR2 edge is iBGP and carries both statements.
  bool found = false;
  for (const auto& e : net.edges()) {
    if (net.node(e.from).name == "PR1" && net.node(e.to).name == "PR2") {
      found = true;
      EXPECT_FALSE(e.ebgp);
      ASSERT_NE(e.export_stmt, nullptr);
      EXPECT_FALSE(e.export_stmt->advertise_community);  // the misconfig
      ASSERT_NE(e.import_stmt, nullptr);
      EXPECT_TRUE(e.import_stmt->advertise_community);
    }
  }
  EXPECT_TRUE(found);

  const auto prefixes = net.internal_prefixes();
  ASSERT_EQ(prefixes.size(), 1u);
  EXPECT_EQ(prefixes[0].to_string(), "0.0.0.0/2");
}

TEST(NetworkTest, SharedExternalNeighborIsOneNode) {
  const char* text = R"(
router A
 bgp as 100
 bgp peer CDN AS 500
 bgp peer B AS 100
router B
 bgp as 100
 bgp peer CDN AS 500
 bgp peer A AS 100
)";
  auto net = net::Network::build(ir::parse_configs(text));
  EXPECT_EQ(net.num_external(), 1u);  // CDN peers at both A and B
  const auto cdn = net.find("CDN");
  ASSERT_TRUE(cdn);
  // Two incoming edges into CDN, one from each PoP.
  EXPECT_EQ(net.in_edges()[*cdn].size(), 2u);
}

TEST(NetworkTest, RejectsDuplicateRouters) {
  const char* text = "router A\n bgp as 1\nrouter A\n bgp as 2\n";
  EXPECT_THROW(net::Network::build(ir::parse_configs(text)),
               std::runtime_error);
}

}  // namespace
}  // namespace expresso::ir
