// Cross-engine agreement: the Minesweeper*-style SAT encoding and Expresso's
// symbolic simulation answer the same question with completely different
// machinery (stable-state constraints + CDCL vs. symbolic fixed point +
// BDDs/automata).  On networks whose policies stay within the feature set
// both model (prefix filters, communities, local preference — no AS-path
// regexes, which Minesweeper cannot express), they must agree on WHICH
// neighbors can receive leaked routes.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "baselines/minesweeper_star.hpp"
#include "ir/frontend.hpp"
#include "expresso/verifier.hpp"
#include "support/util.hpp"

namespace expresso {
namespace {

std::string random_network(std::uint64_t seed) {
  SplitMix64 rng(seed);
  const std::vector<std::string> pool = {"10.0.0.0/16", "10.1.0.0/16"};
  const std::vector<std::string> comms = {"100:1", "100:2"};
  const int nrouters = 2 + static_cast<int>(rng.below(2));
  std::ostringstream os;
  for (int i = 0; i < nrouters; ++i) {
    os << "router R" << i << "\n bgp as 65000\n";
    if (i == 0) os << " bgp network 172.16.0.0/16\n";
    for (int isp = 0; isp < 2; ++isp) {
      os << " route-policy im" << isp << " permit node 10\n";
      os << "  if-match prefix " << pool[rng.below(pool.size())] << "\n";
      if (rng.chance(1, 2)) {
        os << "  set-local-preference 200\n";
      }
      if (rng.chance(2, 3)) {
        os << "  add-community " << comms[rng.below(comms.size())] << "\n";
      }
      // Export: deny one tag (sometimes the wrong one — that's the bug the
      // engines must agree about), then permit.
      os << " route-policy ex" << isp << " deny node 10\n";
      os << "  if-match community " << comms[rng.below(comms.size())]
         << "\n";
      os << " route-policy ex" << isp << " permit node 20\n";
    }
    for (int j = 0; j < nrouters; ++j) {
      if (j == i) continue;
      os << " bgp peer R" << j << " AS 65000";
      if (rng.chance(3, 4)) os << " advertise-community";
      os << "\n";
    }
    if (i == 0) os << " bgp peer ISPa AS 100 import im0 export ex0\n";
    if (i == nrouters - 1) {
      os << " bgp peer ISPb AS 200 import im1 export ex1\n";
    }
  }
  return os.str();
}

class CrossEngineTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossEngineTest, LeakExistenceAgreesPerNeighbor) {
  const std::string text = random_network(GetParam());
  SCOPED_TRACE(text);
  auto network = net::Network::build(ir::parse_configs(text));

  // Expresso's answer: neighbors receiving foreign-originated routes.
  Verifier v(ir::parse_configs(text));
  std::set<std::string> expresso_flagged;
  for (const auto& viol : v.check_route_leak_free()) {
    expresso_flagged.insert(v.network().node(viol.node).name);
  }

  // Minesweeper*'s answer, one SAT query per neighbor.
  baselines::MinesweeperStar ms(network);
  const auto res = ms.check_route_leak_free();
  ASSERT_NE(res.status, baselines::MinesweeperResult::Status::kTimeout);

  EXPECT_EQ(res.violations, expresso_flagged.size());
  EXPECT_EQ(res.status == baselines::MinesweeperResult::Status::kViolation,
            !expresso_flagged.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossEngineTest,
                         ::testing::Range<std::uint64_t>(0, 16));

}  // namespace
}  // namespace expresso
