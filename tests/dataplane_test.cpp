// Symbolic FIB generation, packet forwarding, and PECs on the figure 4
// network.  The paper's "PECs@PR1" box lists:
//   (¬p1¬p2,        [PR2],      ARRIVE)
//   (p1 · n1^2,     [ER1],      EXIT)
//   (p1 · ¬n1^2 n2^2, [PR2,ER2], EXIT)
// plus the implicit drop regions.  We check all of them exactly.
#include "dataplane/forwarding.hpp"

#include <gtest/gtest.h>

#include "expresso/verifier.hpp"

namespace expresso::dataplane {
namespace {

using net::Ipv4Prefix;

const char* kFig4 = R"(
router PR1
 bgp as 300
 route-policy im1 permit node 100
  if-match prefix 128.0.0.0/2 192.0.0.0/2
  set-local-preference 200
  add-community 300:100
 route-policy ex1 deny node 100
  if-match community 300:100
 route-policy ex1 permit node 200
 bgp peer ISP1 AS 100 import im1 export ex1
 bgp peer PR2 AS 300
router PR2
 bgp as 300
 route-policy im2 permit node 100
  if-match prefix 128.0.0.0/2 192.0.0.0/2
  add-community 300:100
 route-policy ex2 deny node 100
  if-match community 300:100
 route-policy ex2 permit node 200
 bgp network 0.0.0.0/2
 bgp peer ISP2 AS 200 import im2 export ex2
 bgp peer PR1 AS 300 advertise-community
)";

class SpfFig4Test : public ::testing::Test {
 protected:
  SpfFig4Test() : v_(kFig4) {
    v_.run_spf();
    pr1_ = *v_.network().find("PR1");
    pr2_ = *v_.network().find("PR2");
    isp1_ = *v_.network().find("ISP1");
    isp2_ = *v_.network().find("ISP2");
    auto& enc = v_.engine().encoding();
    n1_2_ = enc.mgr().var(
        enc.dp_adv_var(v_.network().node(isp1_).external_index, 2));
    n2_2_ = enc.mgr().var(
        enc.dp_adv_var(v_.network().node(isp2_).external_index, 2));
  }

  std::vector<Pec> from_pr1() {
    std::vector<Pec> out;
    for (const auto& pec : v_.pecs()) {
      if (!pec.path.empty() && pec.path.front() == pr1_) out.push_back(pec);
    }
    return out;
  }

  Verifier v_;
  net::NodeIndex pr1_{}, pr2_{}, isp1_{}, isp2_{};
  bdd::NodeId n1_2_{}, n2_2_{};
};

TEST_F(SpfFig4Test, Pr1PecsMatchPaperFigure) {
  auto& enc = v_.engine().encoding();
  auto& m = enc.mgr();
  const auto pecs = from_pr1();

  const bdd::NodeId region_000 = enc.addr_in(*Ipv4Prefix::parse("0.0.0.0/2"));
  const bdd::NodeId region_1xx =
      enc.addr_in(*Ipv4Prefix::parse("128.0.0.0/1"));
  const bdd::NodeId region_01x = enc.addr_in(*Ipv4Prefix::parse("64.0.0.0/2"));

  const Pec* arrive = nullptr;
  const Pec* exit_isp1 = nullptr;
  const Pec* exit_isp2 = nullptr;
  bdd::NodeId blackhole = bdd::kFalse;
  for (const auto& pec : pecs) {
    switch (pec.state) {
      case FinalState::kArrive:
        arrive = &pec;
        break;
      case FinalState::kExit:
        if (pec.path.back() == isp1_) exit_isp1 = &pec;
        if (pec.path.back() == isp2_) exit_isp2 = &pec;
        break;
      case FinalState::kBlackhole:
        blackhole = m.or_(blackhole, pec.pkt);
        break;
      case FinalState::kLoop:
        FAIL() << "unexpected loop";
    }
  }

  // PEC 1: (¬p1¬p2, [PR2], ARRIVE).
  ASSERT_NE(arrive, nullptr);
  EXPECT_EQ(arrive->pkt, region_000);
  EXPECT_EQ(arrive->path, (std::vector<net::NodeIndex>{pr1_, pr2_}));

  // PEC 2: (p1 ∧ n1^2, [ER1], EXIT).
  ASSERT_NE(exit_isp1, nullptr);
  EXPECT_EQ(exit_isp1->pkt, m.and_(region_1xx, n1_2_));
  EXPECT_EQ(exit_isp1->path, (std::vector<net::NodeIndex>{pr1_, isp1_}));

  // PEC 3: (p1 ∧ ¬n1^2 ∧ n2^2, [PR2, ER2], EXIT).
  ASSERT_NE(exit_isp2, nullptr);
  EXPECT_EQ(exit_isp2->pkt,
            m.and_(region_1xx, m.and_(m.not_(n1_2_), n2_2_)));
  EXPECT_EQ(exit_isp2->path,
            (std::vector<net::NodeIndex>{pr1_, pr2_, isp2_}));

  // Drops: the 64.0.0.0/2 region unconditionally, and the 128.0.0.0/1
  // region when neither ISP advertises.
  const bdd::NodeId expected_drop =
      m.or_(region_01x,
            m.and_(region_1xx, m.and_(m.not_(n1_2_), m.not_(n2_2_))));
  EXPECT_EQ(blackhole, expected_drop);

  // The PECs partition the whole (packet ⨯ environment) space.
  bdd::NodeId all = blackhole;
  all = m.or_(all, arrive->pkt);
  all = m.or_(all, exit_isp1->pkt);
  all = m.or_(all, exit_isp2->pkt);
  EXPECT_EQ(all, bdd::kTrue);
  // ...and are pairwise disjoint.
  EXPECT_EQ(m.and_(arrive->pkt, exit_isp1->pkt), bdd::kFalse);
  EXPECT_EQ(m.and_(exit_isp1->pkt, exit_isp2->pkt), bdd::kFalse);
  EXPECT_EQ(m.and_(exit_isp1->pkt, blackhole), bdd::kFalse);
}

TEST_F(SpfFig4Test, DataPlaneVariablesAllocatedOnlyForLength2) {
  // Only one prefix length (2) appears in any RIB, so exactly one n_i^j per
  // neighbor was allocated (the paper's lazy-variable observation).
  EXPECT_EQ(v_.engine().encoding().num_dp_vars(), 2u);
}

TEST_F(SpfFig4Test, ExternalInjectionEntersAtPeeringRouter) {
  // Packets arriving from ISP1 enter at PR1; internal destinations arrive.
  FibBuilder fibs(v_.engine());
  Forwarder fwd(v_.engine(), fibs);
  const auto pecs = fwd.pecs_from(isp1_);
  bool arrived = false;
  for (const auto& pec : pecs) {
    ASSERT_EQ(pec.path.front(), isp1_);
    if (pec.state == FinalState::kArrive) {
      arrived = true;
      EXPECT_EQ(pec.path, (std::vector<net::NodeIndex>{isp1_, pr1_, pr2_}));
    }
  }
  EXPECT_TRUE(arrived);
}

TEST_F(SpfFig4Test, PropertiesOnFigure4) {
  // Route leak is found (ISP1's routes reach ISP2)...
  const auto leaks = v_.check_route_leak_free();
  ASSERT_EQ(leaks.size(), 1u);
  EXPECT_EQ(leaks[0].node, isp2_);
  // ...under the condition that ISP1 advertises (n1).
  auto& enc = v_.engine().encoding();
  EXPECT_EQ(leaks[0].condition,
            enc.adv(v_.network().node(isp1_).external_index));

  // No hijacks: the ISPs' wildcard routes are filtered to 128/2 and 192/2,
  // which do not overlap the internal 0.0.0.0/2.
  EXPECT_TRUE(v_.check_route_hijack_free().empty());
  EXPECT_TRUE(v_.check_traffic_hijack_free().empty());
  EXPECT_TRUE(v_.check_loop_free().empty());

  // Blackhole for the internal prefix: none (always reachable).
  EXPECT_TRUE(
      v_.check_blackhole_free({*Ipv4Prefix::parse("0.0.0.0/2")}).empty());
  // Blackhole for external space exists when nobody advertises.
  EXPECT_FALSE(
      v_.check_blackhole_free({*Ipv4Prefix::parse("128.0.0.0/2")}).empty());

  // Stage stats are populated.
  const auto& st = v_.stats();
  EXPECT_TRUE(st.converged);
  EXPECT_GT(st.total_fib_entries, 0u);
  EXPECT_GT(st.total_pecs, 0u);
  EXPECT_GT(st.bdd_nodes, 0u);
}

TEST_F(SpfFig4Test, EgressPreferenceHoldsTowardIsp1) {
  // PR1 prefers ISP1 (lp 200): in any environment where traffic can leave
  // via ISP1 it must not simultaneously leave via ISP2.
  const auto violations = v_.check_egress_preference(
      "PR1", *Ipv4Prefix::parse("128.0.0.0/2"), {"ISP1", "ISP2"});
  EXPECT_TRUE(violations.empty());
  // The reverse order is violated: ISP2-exit happens only when ISP1 does
  // not advertise, so cond(ISP2) ∧ cond(ISP1) — checking the wrong
  // preference — still reports nothing...
  const auto reversed = v_.check_egress_preference(
      "PR1", *Ipv4Prefix::parse("128.0.0.0/2"), {"ISP2", "ISP1"});
  // ...because the conditions are disjoint (¬n1 vs n1): preference is
  // strict in this network.
  EXPECT_TRUE(reversed.empty());
}

}  // namespace
}  // namespace expresso::dataplane
