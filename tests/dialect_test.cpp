// Cross-dialect verification equivalence (label "dialect").
//
// The dialect-neutral IR's load-bearing promise: two configs in different
// dialects that parse to equal IR are the *same network* — they verify
// identically, key identically, and invalidate identically.  This tier holds
// the whole pipeline to that promise:
//
//   * DialectGolden — hand-blessed fixture files under tests/data/ (the
//     paper's Figure 4 network in both dialects).  Both must parse to equal
//     IR, the RPSL emitter must reproduce its fixture byte-for-byte (format
//     drift fails here, deliberately), and canonical_text() must match its
//     golden rendering.
//   * DialectEquivalence — a fuzz campaign (EXPRESSO_DIALECT_SCENARIOS
//     scenarios, default 50): each generated network is emitted in both
//     dialects, parsed through the respective frontends, and verified in two
//     independent Sessions.  Verdict frames (service::verdict_frames — the
//     canonical renderer, so byte equality IS bdd::structurally_equal) and
//     PEC sets must be byte-identical across dialects; then a random
//     single-router edit is re-emitted per dialect and warm-updated, and the
//     warm results must be bit-identical to cold sessions on the final
//     snapshot in both dialects — cross-dialect equality composed with
//     warm/cold equality.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "expresso/session.hpp"
#include "fuzz/edits.hpp"
#include "fuzz/generator.hpp"
#include "ir/frontend.hpp"
#include "ir/hash.hpp"
#include "service/protocol.hpp"

namespace expresso {
namespace {

int scenario_count() {
  if (const char* env = std::getenv("EXPRESSO_DIALECT_SCENARIOS")) {
    return std::max(1, std::atoi(env));
  }
  return 50;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Canonical one-line rendering of a PEC: final state, the path by router
// *name* (indices agree across the two sessions only because both were built
// from the same IR vector, names make the comparison self-evident), and the
// packet predicate through the canonical BDD serializer.  Sorted multisets
// of these strings compare PEC sets across managers byte-for-byte.
std::vector<std::string> pec_keys(Session& s) {
  const auto& nodes = s.network().nodes();
  const auto& mgr = s.engine().encoding().mgr();
  std::vector<std::string> keys;
  for (const auto& pec : s.pecs()) {
    std::string k = dataplane::to_string(pec.state);
    for (const auto hop : pec.path) {
      k += ' ';
      k += hop < nodes.size() ? nodes[hop].name : "#" + std::to_string(hop);
    }
    k += " | ";
    k += service::canonical_condition(mgr, pec.pkt);
    keys.push_back(std::move(k));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// --- golden fixtures ---------------------------------------------------------

const std::string kDataDir = EXPRESSO_TEST_DATA_DIR;

TEST(DialectGolden, Figure4FixturesParseToEqualIr) {
  const std::string huawei_text = read_file(kDataDir + "/fig4.huawei");
  const std::string rpsl_text = read_file(kDataDir + "/fig4.rpsl");
  EXPECT_EQ(ir::detect_dialect(huawei_text), ir::Dialect::kHuawei);
  EXPECT_EQ(ir::detect_dialect(rpsl_text), ir::Dialect::kRpsl);

  const auto from_huawei = ir::parse_configs(huawei_text);
  const auto from_rpsl = ir::parse_configs(rpsl_text);
  EXPECT_EQ(from_huawei, from_rpsl);
  EXPECT_EQ(ir::snapshot_hash(from_huawei), ir::snapshot_hash(from_rpsl));

  // The emitters must reproduce their fixtures byte-for-byte: these files
  // are the frozen dialect formats, and accidental emitter drift fails here
  // rather than silently re-blessing itself.
  EXPECT_EQ(ir::emit(from_huawei, ir::Dialect::kRpsl), rpsl_text);
  EXPECT_EQ(ir::emit(from_rpsl, ir::Dialect::kHuawei), huawei_text);
}

TEST(DialectGolden, Figure4CanonicalTextMatchesGolden) {
  const auto cfgs = ir::parse_configs(read_file(kDataDir + "/fig4.huawei"));
  EXPECT_EQ(ir::canonical_text(cfgs), read_file(kDataDir + "/fig4.canonical"));
}

TEST(DialectGolden, Figure4VerdictsBitIdenticalAcrossDialects) {
  Session huawei;
  huawei.load(read_file(kDataDir + "/fig4.huawei"));
  huawei.run_src();
  Session rpsl;
  rpsl.load(read_file(kDataDir + "/fig4.rpsl"));
  rpsl.run_src();
  ASSERT_TRUE(huawei.stats().converged);
  ASSERT_TRUE(rpsl.stats().converged);

  const auto fh = service::verdict_frames(huawei, "fig4", 1, {});
  const auto fr = service::verdict_frames(rpsl, "fig4", 1, {});
  ASSERT_EQ(fh.size(), fr.size());
  for (std::size_t i = 0; i < fh.size(); ++i) EXPECT_EQ(fh[i], fr[i]);
  EXPECT_EQ(pec_keys(huawei), pec_keys(rpsl));
}

// --- fuzzed cross-dialect campaign ------------------------------------------

TEST(DialectEquivalence, CampaignVerdictsAndPecsBitIdenticalAcrossDialects) {
  const int n = scenario_count();
  int verified = 0;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t seed = 0xd1a1ec7u + static_cast<std::uint64_t>(i);
    const auto sc = fuzz::generate_scenario(seed);
    std::vector<ir::RouterConfig> base = ir::parse_configs(sc.config_text);
    SCOPED_TRACE("seed=" + std::to_string(seed));

    const std::string huawei_text = ir::emit(base, ir::Dialect::kHuawei);
    const std::string rpsl_text = ir::emit(base, ir::Dialect::kRpsl);
    // Frontend-level equivalence: both emissions parse back (through their
    // own frontends, via sniffing) to the same IR with the same keys.
    ASSERT_EQ(ir::parse_configs(huawei_text), ir::parse_configs(rpsl_text));
    ASSERT_EQ(ir::snapshot_hash(ir::parse_configs(huawei_text)),
              ir::snapshot_hash(ir::parse_configs(rpsl_text)));

    // Engine-level equivalence: independent sessions fed the two texts.
    // verify_warm keeps the later warm updates cold-equivalent even on
    // networks with several stable states (see incremental_test.cpp).
    Session::SessionOptions opt;
    opt.verify_warm = true;
    Session huawei(opt);
    huawei.load(huawei_text);
    Session rpsl(opt);
    rpsl.load(rpsl_text);
    huawei.run_src();
    rpsl.run_src();
    ASSERT_EQ(huawei.stats().converged, rpsl.stats().converged);
    if (!huawei.stats().converged) continue;
    ++verified;

    const auto fh = service::verdict_frames(huawei, "t", 1, sc.pool);
    const auto fr = service::verdict_frames(rpsl, "t", 1, sc.pool);
    ASSERT_EQ(fh.size(), fr.size());
    for (std::size_t f = 0; f < fh.size(); ++f) {
      ASSERT_EQ(fh[f], fr[f]) << "verdict frame " << f;
    }
    ASSERT_EQ(pec_keys(huawei), pec_keys(rpsl));

    // One random single-router edit, re-emitted per dialect, warm-updated in
    // both sessions; the warm results must match cold sessions on the final
    // snapshot dialect-by-dialect *and* across dialects.
    const auto edit = fuzz::apply_random_edit(base, seed * 7919 + 13);
    SCOPED_TRACE("edit=" + edit.description + " router=" + edit.router);
    const std::string huawei_text2 = ir::emit(edit.configs,
                                              ir::Dialect::kHuawei);
    const std::string rpsl_text2 = ir::emit(edit.configs, ir::Dialect::kRpsl);
    huawei.update(huawei_text2);
    rpsl.update(rpsl_text2);
    huawei.run_src();
    rpsl.run_src();

    Session cold_huawei;
    cold_huawei.load(huawei_text2);
    cold_huawei.run_src();
    Session cold_rpsl;
    cold_rpsl.load(rpsl_text2);
    cold_rpsl.run_src();

    ASSERT_EQ(huawei.stats().converged, cold_huawei.stats().converged);
    ASSERT_EQ(rpsl.stats().converged, cold_rpsl.stats().converged);
    ASSERT_EQ(huawei.stats().converged, rpsl.stats().converged);
    if (!huawei.stats().converged) continue;

    const auto wh = service::verdict_frames(huawei, "t", 2, sc.pool);
    const auto wr = service::verdict_frames(rpsl, "t", 2, sc.pool);
    const auto ch = service::verdict_frames(cold_huawei, "t", 2, sc.pool);
    const auto cr = service::verdict_frames(cold_rpsl, "t", 2, sc.pool);
    ASSERT_EQ(wh, ch) << "warm huawei diverged from cold huawei";
    ASSERT_EQ(wr, cr) << "warm rpsl diverged from cold rpsl";
    ASSERT_EQ(ch, cr) << "cold sessions diverged across dialects";
    ASSERT_EQ(pec_keys(huawei), pec_keys(rpsl));
  }
  // The campaign only proves something if most scenarios actually verified.
  EXPECT_GT(verified, n / 2);
}

// Forcing the dialect on Session::load must behave exactly like sniffing
// when the text matches, and throw (not mis-parse) when it does not.
TEST(DialectEquivalence, ForcedDialectMatchesSniffedDialect) {
  const auto sc = fuzz::generate_scenario(0xf0ced);
  const auto base = ir::parse_configs(sc.config_text);
  const std::string rpsl_text = ir::emit(base, ir::Dialect::kRpsl);

  Session sniffed;
  sniffed.load(rpsl_text);
  sniffed.run_src();
  Session forced;
  forced.load(rpsl_text, ir::Dialect::kRpsl);
  forced.run_src();
  const auto fs = service::verdict_frames(sniffed, "t", 1, sc.pool);
  const auto ff = service::verdict_frames(forced, "t", 1, sc.pool);
  EXPECT_EQ(fs, ff);

  Session wrong;
  EXPECT_THROW(wrong.load(rpsl_text, ir::Dialect::kHuawei), ir::ParseError);
}

}  // namespace
}  // namespace expresso
