#include "symbolic/encoding.hpp"

#include <gtest/gtest.h>

namespace expresso::symbolic {
namespace {

using net::Ipv4Prefix;
using net::PrefixMatch;

class EncodingTest : public ::testing::Test {
 protected:
  EncodingTest() : enc_(3, 2) {}
  Encoding enc_;
};

TEST_F(EncodingTest, VariableLayout) {
  EXPECT_EQ(enc_.addr_var(0), 0u);
  EXPECT_EQ(enc_.addr_var(31), 31u);
  EXPECT_EQ(enc_.len_var(0), 32u);
  EXPECT_EQ(enc_.adv_var(0), 38u);
  EXPECT_EQ(enc_.adv_var(2), 40u);
  EXPECT_EQ(enc_.atom_var(0), 41u);
  // 38 prefix + 3 advertiser + 2 atom vars, plus the reserved length-major
  // n_i^j block (33 lengths x 3 neighbors).
  EXPECT_EQ(enc_.mgr().num_vars(), 43u + 33u * 3u);
  // Length-major layout: same-length variables are adjacent.
  EXPECT_EQ(enc_.dp_adv_var(1, 7) - enc_.dp_adv_var(0, 7), 1u);
  EXPECT_EQ(enc_.dp_adv_var(0, 8) - enc_.dp_adv_var(0, 7), 3u);
}

TEST_F(EncodingTest, DataPlaneVarsAllocatedLazily) {
  EXPECT_EQ(enc_.num_dp_vars(), 0u);
  const auto v1 = enc_.dp_adv_var(0, 16);
  const auto v2 = enc_.dp_adv_var(0, 24);
  const auto v3 = enc_.dp_adv_var(1, 16);
  EXPECT_EQ(enc_.num_dp_vars(), 3u);
  EXPECT_NE(v1, v2);
  EXPECT_NE(v1, v3);
  // Idempotent.
  EXPECT_EQ(enc_.dp_adv_var(0, 16), v1);
  EXPECT_EQ(enc_.num_dp_vars(), 3u);
}

TEST_F(EncodingTest, LenPredicates) {
  auto& m = enc_.mgr();
  // len_eq values are mutually disjoint.
  EXPECT_EQ(m.and_(enc_.len_eq(16), enc_.len_eq(24)), bdd::kFalse);
  // ge/le windows compose.
  const auto w = m.and_(enc_.len_ge(8), enc_.len_le(16));
  EXPECT_NE(m.and_(w, enc_.len_eq(12)), bdd::kFalse);
  EXPECT_EQ(m.and_(w, enc_.len_eq(7)), bdd::kFalse);
  EXPECT_EQ(m.and_(w, enc_.len_eq(17)), bdd::kFalse);
  // Valid length excludes the unused 6-bit codes > 32.
  EXPECT_EQ(m.and_(enc_.len_valid(), enc_.len_eq(33)), bdd::kFalse);
  EXPECT_NE(m.and_(enc_.len_valid(), enc_.len_eq(32)), bdd::kFalse);
  EXPECT_NE(m.and_(enc_.len_valid(), enc_.len_eq(0)), bdd::kFalse);
}

TEST_F(EncodingTest, ExactPrefixSemantics) {
  const auto p16 = *Ipv4Prefix::parse("10.1.0.0/16");
  const auto p24 = *Ipv4Prefix::parse("10.1.2.0/24");
  const auto q16 = *Ipv4Prefix::parse("10.2.0.0/16");
  auto& m = enc_.mgr();
  const auto e16 = enc_.prefix_exact(p16);
  // Same prefix intersects itself; distinct prefixes of equal length do not.
  EXPECT_NE(m.and_(e16, e16), bdd::kFalse);
  EXPECT_EQ(m.and_(e16, enc_.prefix_exact(q16)), bdd::kFalse);
  // Different lengths never intersect (length bits differ).
  EXPECT_EQ(m.and_(e16, enc_.prefix_exact(p24)), bdd::kFalse);
}

TEST_F(EncodingTest, PrefixMatchWindows) {
  // The paper's example: a policy for 10.0.0.0/16 ge 24 covers
  // 10.0.1.0/24 and 10.0.2.0/24 alike.
  const auto base = *Ipv4Prefix::parse("10.0.0.0/16");
  const auto pm = PrefixMatch::range(base, 24, 32);
  const auto pred = enc_.prefix_match(pm);
  auto& m = enc_.mgr();
  EXPECT_NE(m.and_(pred, enc_.prefix_exact(*Ipv4Prefix::parse("10.0.1.0/24"))),
            bdd::kFalse);
  EXPECT_NE(m.and_(pred, enc_.prefix_exact(*Ipv4Prefix::parse("10.0.2.0/24"))),
            bdd::kFalse);
  EXPECT_NE(
      m.and_(pred, enc_.prefix_exact(*Ipv4Prefix::parse("10.0.2.128/26"))),
      bdd::kFalse);
  // Too short, or outside the base prefix: no match.
  EXPECT_EQ(m.and_(pred, enc_.prefix_exact(base)), bdd::kFalse);
  EXPECT_EQ(m.and_(pred, enc_.prefix_exact(*Ipv4Prefix::parse("10.1.1.0/24"))),
            bdd::kFalse);
}

TEST_F(EncodingTest, MaterializeAndWitness) {
  const auto pa = *Ipv4Prefix::parse("128.0.0.0/2");
  const auto pb = *Ipv4Prefix::parse("192.0.0.0/2");
  const auto pc = *Ipv4Prefix::parse("0.0.0.0/2");
  auto& m = enc_.mgr();
  // d covers {pa, pb} x (n0 advertises).
  const auto d = m.and_(m.or_(enc_.prefix_exact(pa), enc_.prefix_exact(pb)),
                        enc_.adv(0));
  const auto mat = enc_.materialize_prefixes(d, {pa, pb, pc});
  ASSERT_EQ(mat.size(), 2u);
  EXPECT_EQ(mat[0], pa);
  EXPECT_EQ(mat[1], pb);

  const auto w = enc_.witness(m.and_(d, enc_.prefix_exact(pa)));
  EXPECT_EQ(w.prefix, pa);
  ASSERT_EQ(w.advertises.size(), 3u);
  EXPECT_EQ(w.advertises[0], 1);
}

TEST_F(EncodingTest, CondDropsPrefixDimensions) {
  auto& m = enc_.mgr();
  const auto pa = *Ipv4Prefix::parse("128.0.0.0/2");
  // Paper section 6.1: Cond(¬p1¬p2) = ⊤, Cond(p1 ∧ n2) = n2.
  EXPECT_EQ(enc_.cond(enc_.prefix_exact(pa)), bdd::kTrue);
  const auto d = m.and_(enc_.prefix_exact(pa), enc_.adv(1));
  EXPECT_EQ(enc_.cond(d), enc_.adv(1));
  EXPECT_EQ(enc_.cond(bdd::kFalse), bdd::kFalse);
}

TEST_F(EncodingTest, AddrPredicates) {
  auto& m = enc_.mgr();
  const auto p = *Ipv4Prefix::parse("10.1.0.0/16");
  const std::uint32_t inside = (10u << 24) | (1u << 16) | (2u << 8) | 3u;
  const std::uint32_t outside = (10u << 24) | (2u << 16);
  EXPECT_NE(m.and_(enc_.addr_in(p), enc_.addr_of(inside)), bdd::kFalse);
  EXPECT_EQ(m.and_(enc_.addr_in(p), enc_.addr_of(outside)), bdd::kFalse);
  // A /0 prefix matches every address.
  EXPECT_EQ(enc_.addr_in(*Ipv4Prefix::parse("0.0.0.0/0")), bdd::kTrue);
}

}  // namespace
}  // namespace expresso::symbolic
