// Theorem 3 in practice: EPVP's symbolic fixed point, unfolded at a concrete
// external route environment, must equal the stable state concrete SPVP
// computes for that environment — for every environment.
//
// For each random seed we generate a small network (random iBGP mesh /
// policies / community tags / local preferences), enumerate every
// environment (which neighbor announces which prefix of a small pool, with
// every community-atom combination announced simultaneously), and compare:
//   * internal RIBs (grouped by preference-relevant attributes and by the
//     set of community atom-subsets),
//   * routes exported to each external neighbor,
//   * concrete LPM forwarding decisions against the symbolic port
//     predicates evaluated under the environment's n_i^j assignment.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "dataplane/fib.hpp"
#include "epvp/engine.hpp"
#include "ir/frontend.hpp"
#include "routing/spvp.hpp"
#include "support/util.hpp"

namespace expresso {
namespace {

using net::Ipv4Prefix;
using net::NodeIndex;

const std::vector<std::string> kPool = {"10.0.0.0/16", "10.1.0.0/16",
                                        "192.168.0.0/24"};
const std::vector<std::string> kComms = {"100:1", "100:2"};
const std::vector<std::string> kLps = {"100", "200", "300"};

// Generates a randomized config (2-3 routers, 2 external neighbors).
std::string random_network(std::uint64_t seed) {
  SplitMix64 rng(seed);
  const int nrouters = 2 + static_cast<int>(rng.below(2));
  std::ostringstream os;
  for (int i = 0; i < nrouters; ++i) {
    os << "router R" << i << "\n bgp as 65000\n";
    // One internal origination on R0.
    if (i == 0) os << " bgp network 172.16.0.0/16\n";

    // Random import/export policies for this router's external sessions.
    for (int isp = 0; isp < 2; ++isp) {
      // import policy: permit a random non-empty prefix subset, random lp,
      // random community tag; optionally a final permit-all clause.
      os << " route-policy im" << isp << " permit node 10\n";
      os << "  if-match prefix";
      bool any = false;
      for (const auto& p : kPool) {
        if (rng.chance(1, 2)) {
          os << " " << p;
          any = true;
        }
      }
      if (!any) os << " " << kPool[rng.below(kPool.size())];
      os << "\n";
      if (rng.chance(1, 2)) {
        os << "  set-local-preference " << kLps[rng.below(kLps.size())]
           << "\n";
      }
      if (rng.chance(1, 2)) {
        os << "  add-community " << kComms[rng.below(kComms.size())] << "\n";
      }
      if (rng.chance(1, 3)) {
        os << " route-policy im" << isp << " permit node 20\n";
        if (rng.chance(1, 2)) {
          os << "  if-match community " << kComms[rng.below(kComms.size())]
             << "\n";
        } else {
          os << "  if-match prefix " << kPool[rng.below(kPool.size())]
             << "\n";
        }
      }
      // export policy: deny a community, then permit everything.
      os << " route-policy ex" << isp << " deny node 10\n";
      os << "  if-match community " << kComms[rng.below(kComms.size())]
         << "\n";
      os << " route-policy ex" << isp << " permit node 20\n";
    }

    // iBGP full mesh, advertise-community on a random subset of sessions.
    for (int j = 0; j < nrouters; ++j) {
      if (j == i) continue;
      os << " bgp peer R" << j << " AS 65000";
      if (rng.chance(2, 3)) os << " advertise-community";
      os << "\n";
    }
    // External sessions: ISPa on R0, ISPb on the last router; with one
    // chance in three, ISPb also peers here (multi-PoP neighbor).
    if (i == 0) {
      os << " bgp peer ISPa AS 100 import im0 export ex0\n";
    }
    if (i == nrouters - 1 || rng.chance(1, 3)) {
      os << " bgp peer ISPb AS 200 import im1 export ex1\n";
    }
  }
  return os.str();
}

// Preference-relevant key of a route (everything but the community set).
struct Key {
  std::uint32_t lp;
  int asp_len;
  symbolic::Learned learned;
  NodeIndex nh;
  NodeIndex orig;
  auto operator<=>(const Key&) const = default;
};

using AtomSubset = std::set<std::uint32_t>;
using Grouped = std::map<Key, std::set<AtomSubset>>;

// All community-atom subsets a symbolic community set contains.
std::set<AtomSubset> unfold_comm(epvp::Engine& eng,
                                 const symbolic::CommunitySet& cs) {
  auto& enc = eng.encoding();
  auto& mgr = enc.mgr();
  const std::uint32_t k = enc.num_atoms();
  std::set<AtomSubset> out;
  for (std::uint32_t mask = 0; mask < (1u << k); ++mask) {
    bdd::NodeId a = cs.as_bdd();
    for (std::uint32_t i = 0; i < k; ++i) {
      a = mgr.and_(a, (mask >> i) & 1 ? mgr.var(enc.atom_var(i))
                                      : mgr.nvar(enc.atom_var(i)));
    }
    if (a != bdd::kFalse) {
      AtomSubset s;
      for (std::uint32_t i = 0; i < k; ++i) {
        if ((mask >> i) & 1) s.insert(i);
      }
      out.insert(std::move(s));
    }
  }
  return out;
}

// The low parameter bit selects the engine variant: 0 = full Expresso
// (symbolic AS paths), 1 = Expresso- (concrete representative AS paths).
// The oracle announces exactly the concrete representative ([neighbor AS]),
// so BOTH variants must unfold to the same concrete stable state.
class OracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleTest, EpvpUnfoldsToSpvp) {
  const std::string text = random_network(GetParam() >> 1);
  SCOPED_TRACE(text);
  auto network = net::Network::build(ir::parse_configs(text));

  epvp::Options options;
  if (GetParam() & 1) {
    options.aspath_mode = automaton::AsPathMode::kConcrete;
  }
  epvp::Engine eng(network, options);
  ASSERT_TRUE(eng.run());
  dataplane::FibBuilder fibs(eng);

  routing::SpvpEngine oracle(network);
  auto& enc = eng.encoding();
  auto& mgr = enc.mgr();
  const auto& atomizer = eng.atomizer();
  const std::uint32_t k = enc.num_atoms();

  std::vector<Ipv4Prefix> pool;
  for (const auto& s : kPool) pool.push_back(*Ipv4Prefix::parse(s));

  const auto externals = network.external_nodes();
  ASSERT_EQ(externals.size(), 2u);

  // Environment: bit (e * pool.size() + p) set iff external e announces
  // pool[p].  Enumerate all of them.
  const std::uint32_t nbits =
      static_cast<std::uint32_t>(externals.size() * pool.size());
  for (std::uint32_t env_bits = 0; env_bits < (1u << nbits); ++env_bits) {
    auto announces = [&](std::size_t e, std::size_t p) {
      return (env_bits >> (e * pool.size() + p)) & 1;
    };

    // --- concrete side -----------------------------------------------------
    routing::Environment env;
    for (std::size_t e = 0; e < externals.size(); ++e) {
      auto& anns = env[externals[e]];
      const std::uint32_t asn = network.node(externals[e]).asn;
      for (std::size_t p = 0; p < pool.size(); ++p) {
        if (!announces(e, p)) continue;
        // Announce every community-atom combination simultaneously — the
        // concrete counterpart of EPVP's universal symbolic community set.
        for (std::uint32_t mask = 0; mask < (1u << k); ++mask) {
          routing::Announcement a;
          a.prefix = pool[p];
          a.as_path = {asn};
          for (std::uint32_t i = 0; i < k; ++i) {
            if ((mask >> i) & 1) a.comms.insert(atomizer.sample(i));
          }
          anns.push_back(std::move(a));
        }
      }
    }
    ASSERT_TRUE(oracle.run(env));

    // --- compare internal RIBs per prefix ----------------------------------
    for (std::size_t p = 0; p < pool.size(); ++p) {
      // The environment point for this prefix.
      bdd::NodeId point = enc.prefix_exact(pool[p]);
      for (std::size_t e = 0; e < externals.size(); ++e) {
        const auto v = network.node(externals[e]).external_index;
        point = mgr.and_(point,
                         announces(e, p) ? enc.adv(v) : mgr.not_(enc.adv(v)));
      }
      for (NodeIndex u : network.internal_nodes()) {
        Grouped sym;
        for (const auto& r : eng.rib(u)) {
          if (mgr.and_(r.d, point) == bdd::kFalse) continue;
          Key key{r.attrs.local_pref, r.attrs.aspath.min_length(),
                  r.attrs.learned, r.attrs.next_hop, r.attrs.originator};
          auto subs = unfold_comm(eng, r.attrs.comm);
          sym[key].insert(subs.begin(), subs.end());
        }
        Grouped conc;
        for (const auto& r : oracle.rib(u)) {
          if (!(r.prefix == pool[p])) continue;
          Key key{r.local_pref, static_cast<int>(r.as_path.size()), r.learned,
                  r.next_hop, r.originator};
          AtomSubset s;
          for (const auto& c : r.comms) s.insert(atomizer.atom_of(c));
          conc[key].insert(std::move(s));
        }
        EXPECT_EQ(sym, conc)
            << "node " << network.node(u).name << " prefix "
            << pool[p].to_string() << " env " << env_bits;
      }

      // --- compare routes exported to neighbors -----------------------------
      for (NodeIndex x : externals) {
        std::set<Key> sym;
        for (const auto& r : eng.external_rib(x)) {
          if (mgr.and_(r.d, point) == bdd::kFalse) continue;
          sym.insert(Key{r.attrs.local_pref, r.attrs.aspath.min_length(),
                         r.attrs.learned, r.attrs.next_hop,
                         r.attrs.originator});
        }
        std::set<Key> conc;
        for (const auto& r : oracle.external_rib(x)) {
          if (!(r.prefix == pool[p])) continue;
          conc.insert(Key{r.local_pref, static_cast<int>(r.as_path.size()),
                          r.learned, r.next_hop, r.originator});
        }
        EXPECT_EQ(sym, conc) << "external " << network.node(x).name
                             << " prefix " << pool[p].to_string() << " env "
                             << env_bits;
      }
    }

    // --- compare forwarding decisions ---------------------------------------
    // n_i^j assignment: neighbor i advertises the length-j prefix containing
    // the destination address.
    std::vector<std::uint32_t> sample_ips;
    for (const auto& pf : pool) sample_ips.push_back(pf.addr + 1);
    sample_ips.push_back(0x01020304);  // outside every pool prefix

    for (std::uint32_t ip : sample_ips) {
      bdd::NodeId assign = enc.addr_of(ip);
      for (const auto& [key, var] : enc.dp_var_map()) {
        const auto [nbr, len] = key;
        bool adv = false;
        const Ipv4Prefix cover = Ipv4Prefix::make(ip, len);
        for (std::size_t e = 0; e < externals.size(); ++e) {
          if (network.node(externals[e]).external_index != nbr) continue;
          for (std::size_t p = 0; p < pool.size(); ++p) {
            adv = adv || (announces(e, p) && pool[p] == cover);
          }
        }
        assign = mgr.and_(assign, adv ? mgr.var(var) : mgr.nvar(var));
      }
      for (NodeIndex u : network.internal_nodes()) {
        const auto& pp = fibs.ports(u);
        std::set<NodeIndex> sym_hops;
        for (const auto& [peer, pred] : pp.to_peer) {
          if (mgr.and_(pred, assign) != bdd::kFalse) sym_hops.insert(peer);
        }
        const bool sym_local = mgr.and_(pp.local, assign) != bdd::kFalse;

        bool conc_local = false;
        const auto hops = oracle.forward(u, ip, conc_local);
        const std::set<NodeIndex> conc_hops(hops.begin(), hops.end());
        EXPECT_EQ(sym_hops, conc_hops)
            << "fwd at " << network.node(u).name << " ip " << ip << " env "
            << env_bits;
        EXPECT_EQ(sym_local, conc_local)
            << "local at " << network.node(u).name << " ip " << ip << " env "
            << env_bits;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleTest,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace expresso
