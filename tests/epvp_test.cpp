// End-to-end symbolic route computation on the paper's figure 4 network.
//
// The example uses 3-bit prefixes (100/2, 110/2, 000/2); we map them to the
// equivalent IPv4 prefixes 128.0.0.0/2, 192.0.0.0/2 and 0.0.0.0/2.  The
// planted misconfiguration — PR1's session towards PR2 lacks
// advertise-community — must produce exactly the route leak the paper's
// workflow walks through (steps 1-6 of figure 4).
#include "epvp/engine.hpp"

#include <gtest/gtest.h>

#include "ir/frontend.hpp"

namespace expresso::epvp {
namespace {

using net::Ipv4Prefix;
using symbolic::SymbolicRoute;

const char* kFig4 = R"(
router PR1
 bgp as 300
 route-policy im1 permit node 100
  if-match prefix 128.0.0.0/2 192.0.0.0/2
  set-local-preference 200
  add-community 300:100
 route-policy ex1 deny node 100
  if-match community 300:100
 route-policy ex1 permit node 200
 bgp peer ISP1 AS 100 import im1 export ex1
 bgp peer PR2 AS 300
router PR2
 bgp as 300
 route-policy im2 permit node 100
  if-match prefix 128.0.0.0/2 192.0.0.0/2
  add-community 300:100
 route-policy ex2 deny node 100
  if-match community 300:100
 route-policy ex2 permit node 200
 bgp network 0.0.0.0/2
 bgp peer ISP2 AS 200 import im2 export ex2
 bgp peer PR1 AS 300 advertise-community
)";

class Fig4Test : public ::testing::Test {
 protected:
  Fig4Test()
      : net_(net::Network::build(ir::parse_configs(kFig4))),
        engine_(net_, Options{}) {
    converged_ = engine_.run();
    pr1_ = *net_.find("PR1");
    pr2_ = *net_.find("PR2");
    isp1_ = *net_.find("ISP1");
    isp2_ = *net_.find("ISP2");
    p100_ = *Ipv4Prefix::parse("128.0.0.0/2");
    p110_ = *Ipv4Prefix::parse("192.0.0.0/2");
    p000_ = *Ipv4Prefix::parse("0.0.0.0/2");
  }

  // Routes in `rib` covering prefix p (d ∧ exact(p) satisfiable).
  std::vector<const SymbolicRoute*> covering(
      const std::vector<SymbolicRoute>& rib, const Ipv4Prefix& p) {
    std::vector<const SymbolicRoute*> out;
    auto& enc = engine_.encoding();
    for (const auto& r : rib) {
      if (enc.mgr().and_(r.d, enc.prefix_exact(p)) != bdd::kFalse) {
        out.push_back(&r);
      }
    }
    return out;
  }

  net::Network net_;
  Engine engine_;
  bool converged_ = false;
  net::NodeIndex pr1_{}, pr2_{}, isp1_{}, isp2_{};
  Ipv4Prefix p100_{}, p110_{}, p000_{};
};

TEST_F(Fig4Test, Converges) {
  EXPECT_TRUE(converged_);
  EXPECT_LE(engine_.iterations(), 10);
}

TEST_F(Fig4Test, Pr1RibMatchesPaperFigure) {
  const auto& rib = engine_.rib(pr1_);
  auto& enc = engine_.encoding();
  auto& m = enc.mgr();

  // Row 1: the internal 000/2 route from PR2, environment-independent.
  const auto internal = covering(rib, p000_);
  ASSERT_EQ(internal.size(), 1u);
  EXPECT_EQ((*internal[0]).attrs.originator, pr2_);
  EXPECT_EQ(enc.cond((*internal[0]).d), bdd::kTrue);
  EXPECT_EQ((*internal[0]).attrs.local_pref, 100u);

  // Rows 2+3 cover 100/2: the ISP1 route (lp 200) under n1, and the ISP2
  // route (via PR2, lp 100) under ¬n1 ∧ n2.
  const auto ext = covering(rib, p100_);
  ASSERT_EQ(ext.size(), 2u);
  const SymbolicRoute* via_isp1 = nullptr;
  const SymbolicRoute* via_isp2 = nullptr;
  for (const auto* r : ext) {
    if (r->attrs.originator == isp1_) via_isp1 = r;
    if (r->attrs.originator == isp2_) via_isp2 = r;
  }
  ASSERT_NE(via_isp1, nullptr);
  ASSERT_NE(via_isp2, nullptr);

  EXPECT_EQ(via_isp1->attrs.local_pref, 200u);
  EXPECT_EQ(via_isp1->attrs.next_hop, isp1_);
  const auto n1 =
      enc.adv(net_.node(isp1_).external_index);
  const auto n2 = enc.adv(net_.node(isp2_).external_index);
  EXPECT_EQ(enc.cond(m.and_(via_isp1->d, enc.prefix_exact(p100_))), n1);

  EXPECT_EQ(via_isp2->attrs.local_pref, 100u);
  EXPECT_EQ(via_isp2->attrs.next_hop, pr2_);
  EXPECT_EQ(enc.cond(m.and_(via_isp2->d, enc.prefix_exact(p100_))),
            m.and_(m.not_(n1), n2));

  // Both external routes also cover 110/2, mirroring the symbolic split.
  EXPECT_EQ(covering(rib, p110_).size(), 2u);

  // The ISP1 route's AS path starts with AS 100 (figure 4: "100.*").
  const auto w = via_isp1->attrs.aspath.witness();
  ASSERT_FALSE(w.empty());
  EXPECT_EQ(w[0], engine_.alphabet().symbol_for(100));
}

TEST_F(Fig4Test, CommunityErasedOnLeakPath) {
  // The ISP1 route at PR1 carries community atom 300:100...
  const auto a = *engine_.atom_of(*net::Community::parse("300:100"));
  const auto& rib1 = engine_.rib(pr1_);
  const SymbolicRoute* at_pr1 = nullptr;
  for (const auto& r : rib1) {
    if (r.attrs.originator == isp1_) at_pr1 = &r;
  }
  ASSERT_NE(at_pr1, nullptr);
  EXPECT_TRUE(at_pr1->attrs.comm.may_contain(engine_.encoding(), a));
  // Every member list contains the tag (added unconditionally at import).
  EXPECT_TRUE(at_pr1->attrs.comm.matching_none(engine_.encoding(), {a})
                  .is_empty());

  // ...but at PR2 the tag is gone (PR1 -> PR2 lacks advertise-community).
  const auto& rib2 = engine_.rib(pr2_);
  const SymbolicRoute* at_pr2 = nullptr;
  for (const auto& r : rib2) {
    if (r.attrs.originator == isp1_) at_pr2 = &r;
  }
  ASSERT_NE(at_pr2, nullptr);
  EXPECT_FALSE(at_pr2->attrs.comm.may_contain(engine_.encoding(), a));
  // Local preference rides the iBGP session unchanged.
  EXPECT_EQ(at_pr2->attrs.local_pref, 200u);
}

TEST_F(Fig4Test, RouteLeaksToIsp2ButNotIsp1) {
  // Step 6 of the figure: ISP2 receives a route originated by ISP1.
  bool leak_to_isp2 = false;
  for (const auto& r : engine_.external_rib(isp2_)) {
    if (r.attrs.originator == isp1_) {
      leak_to_isp2 = true;
      // The leaked path is "300 100.*": our AS prepended over eBGP.
      const auto w = r.attrs.aspath.witness();
      ASSERT_GE(w.size(), 2u);
      EXPECT_EQ(w[0], engine_.alphabet().symbol_for(300));
      EXPECT_EQ(w[1], engine_.alphabet().symbol_for(100));
    }
  }
  EXPECT_TRUE(leak_to_isp2);

  // The reverse direction is protected: PR2 -> PR1 advertises communities,
  // so ex1 denies ISP2's routes towards ISP1.
  for (const auto& r : engine_.external_rib(isp1_)) {
    EXPECT_NE(r.attrs.originator, isp2_);
  }
}

TEST_F(Fig4Test, FixingTheMisconfigRemovesTheLeak) {
  // Add the missing advertise-community and re-run: no leak anywhere.
  std::string fixed(kFig4);
  const std::string from = "bgp peer PR2 AS 300";
  fixed.replace(fixed.find(from), from.size(),
                "bgp peer PR2 AS 300 advertise-community");
  auto net = net::Network::build(ir::parse_configs(fixed));
  Engine engine(net, Options{});
  ASSERT_TRUE(engine.run());
  for (const auto e : net.external_nodes()) {
    for (const auto& r : engine.external_rib(e)) {
      EXPECT_TRUE(!net.node(r.attrs.originator).external ||
                  r.attrs.originator == e)
          << "unexpected leak to " << net.node(e).name;
    }
  }
}

TEST_F(Fig4Test, ExpressoMinusConcreteAsPaths) {
  // The Expresso- variant also finds the leak (concrete AS paths).
  Options opt;
  opt.aspath_mode = automaton::AsPathMode::kConcrete;
  Engine engine(net_, opt);
  ASSERT_TRUE(engine.run());
  bool leak = false;
  for (const auto& r : engine.external_rib(isp2_)) {
    leak = leak || r.attrs.originator == isp1_;
  }
  EXPECT_TRUE(leak);
}

TEST_F(Fig4Test, AutomatonCommunityRepresentationAgrees) {
  Options opt;
  opt.comm_rep = symbolic::CommunityRep::kAutomaton;
  Engine engine(net_, opt);
  ASSERT_TRUE(engine.run());
  bool leak = false;
  for (const auto& r : engine.external_rib(isp2_)) {
    leak = leak || r.attrs.originator == isp1_;
  }
  EXPECT_TRUE(leak);
  for (const auto& r : engine.external_rib(isp1_)) {
    EXPECT_NE(r.attrs.originator, isp2_);
  }
}

TEST_F(Fig4Test, NoPoliciesFeatureLevelLeaksEverywhere) {
  // Figure 6(c)'s "none" level: without policies the network is all-permit,
  // so both directions leak.
  Options opt;
  opt.apply_policies = false;
  Engine engine(net_, opt);
  ASSERT_TRUE(engine.run());
  bool leak12 = false, leak21 = false;
  for (const auto& r : engine.external_rib(isp2_)) {
    leak12 = leak12 || r.attrs.originator == isp1_;
  }
  for (const auto& r : engine.external_rib(isp1_)) {
    leak21 = leak21 || r.attrs.originator == isp2_;
  }
  EXPECT_TRUE(leak12);
  EXPECT_TRUE(leak21);
}

}  // namespace
}  // namespace expresso::epvp
