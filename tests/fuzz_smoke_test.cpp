// Bounded smoke mode of the differential fuzzer (ctest label "fuzz").
//
// Four fixed-seed shards of 150 scenarios each (600 total) must produce zero
// EPVP/SPVP/baseline mismatches; one shard runs the symbolic engine with two
// worker threads to keep the parallel pipeline inside the oracle loop.  The
// self-test plants a deliberate preference-comparison bug into the concrete
// oracle and requires the harness to detect it and shrink a repro to at most
// five nodes.  Long campaigns: `expresso_fuzz --runs 100000` (TESTING.md).
#include <gtest/gtest.h>

#include <stdexcept>

#include "ir/frontend.hpp"
#include "fuzz/campaign.hpp"
#include "fuzz/differ.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/scenario.hpp"
#include "fuzz/shrink.hpp"
#include "net/network.hpp"

namespace expresso::fuzz {
namespace {

class FuzzSmokeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSmokeTest, CampaignFindsNoMismatches) {
  CampaignOptions opt;
  opt.seed = 0xe4b0550 + GetParam();
  opt.runs = 150;
  // One shard exercises the threaded symbolic pipeline inside the differ.
  opt.diff.threads = GetParam() == 3 ? 2 : 1;
  const CampaignStats st = run_campaign(opt);
  EXPECT_EQ(st.runs, opt.runs);
  EXPECT_EQ(st.rejected, 0);
  EXPECT_GT(st.baselines_checked, 0);
  EXPECT_EQ(st.mismatched, 0);
  for (const auto& f : st.failures) {
    ADD_FAILURE() << "shrunk repro:\n" << to_repro(f.shrunk, f.notes);
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, FuzzSmokeTest,
                         ::testing::Range<std::uint64_t>(0, 4));

TEST(FuzzSelfTest, PlantedPreferenceBugIsDetectedAndShrunk) {
  CampaignOptions opt;
  opt.seed = 5;
  opt.runs = 100;
  opt.max_failures = 1;
  opt.diff.plant_preference_bug = true;
  const CampaignStats st = run_campaign(opt);
  ASSERT_FALSE(st.failures.empty())
      << "the planted preference bug was not detected";
  const Failure& f = st.failures.front();

  // The shrunk scenario still exposes the bug...
  DiffOptions with_bug;
  with_bug.plant_preference_bug = true;
  EXPECT_FALSE(diff_scenario(f.shrunk, with_bug).mismatches.empty());
  // ...and is clean on the unmodified engines.
  EXPECT_TRUE(diff_scenario(f.shrunk, DiffOptions{}).agreed());

  // Minimality: at most 5 nodes (internal routers + external neighbors).
  const auto network =
      net::Network::build(ir::parse_configs(f.shrunk.config_text));
  EXPECT_LE(network.nodes().size(), 5u)
      << "shrunk repro:\n" << to_repro(f.shrunk, f.notes);
}

TEST(FuzzRepro, RoundTripsByteIdentically) {
  for (std::uint64_t seed : {1ull, 17ull, 123456789ull}) {
    const Scenario s = generate_scenario(seed);
    const std::string text =
        to_repro(s, {"note one", "a\nmulti-line\nnote"});
    const Scenario back = parse_repro(text);
    EXPECT_TRUE(back == s) << text;
    EXPECT_EQ(to_repro(back), to_repro(s));
  }
}

TEST(FuzzRepro, RejectsMalformedInput) {
  EXPECT_THROW(parse_repro("seed 1\n"), std::runtime_error);  // no config
  EXPECT_THROW(parse_repro("bogus directive\nconfig <<<\n>>>\n"),
               std::runtime_error);
  EXPECT_THROW(parse_repro("pool not-a-prefix\nconfig <<<\n>>>\n"),
               std::runtime_error);
  EXPECT_THROW(parse_repro("config <<<\nrouter R0\n"),  // unterminated
               std::runtime_error);
}

// A corrupted seed line must surface as a line-numbered runtime_error (the
// replay CLI prints what()), never as std::stoull's bare invalid_argument /
// out_of_range — and trailing garbage or negative values must not be
// silently accepted the way std::stoull("8abc") / ("-1") would.
TEST(FuzzRepro, RejectsMalformedSeedWithLineNumber) {
  const char* bad[] = {
      "seed banana\nconfig <<<\n>>>\n",
      "seed 8abc\nconfig <<<\n>>>\n",
      "seed -1\nconfig <<<\n>>>\n",
      "seed 99999999999999999999999\nconfig <<<\n>>>\n",  // > 2^64
      "seed \nconfig <<<\n>>>\n",  // "seed" + empty token -> unknown shape
  };
  for (const char* text : bad) {
    SCOPED_TRACE(text);
    try {
      parse_repro(text);
      FAIL() << "malformed seed accepted";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("repro line 1"), std::string::npos)
          << e.what();
    }
  }
  // Boundary: the largest representable seed still parses.
  const Scenario s =
      parse_repro("seed 18446744073709551615\nconfig <<<\n>>>\n");
  EXPECT_EQ(s.seed, 18446744073709551615ull);
}

TEST(FuzzDeterminism, GenerationIsAPureFunctionOfSeed) {
  for (std::uint64_t seed : {0ull, 42ull, 0xdeadbeefull}) {
    EXPECT_TRUE(generate_scenario(seed) == generate_scenario(seed));
  }
}

TEST(FuzzDeterminism, CampaignsReplayByteIdenticallyAcrossThreadCounts) {
  CampaignOptions opt;
  opt.seed = 5;
  opt.runs = 40;
  opt.max_failures = 2;
  opt.diff.plant_preference_bug = true;  // guarantees failures to compare
  const CampaignStats a = run_campaign(opt);
  opt.diff.threads = 2;
  const CampaignStats b = run_campaign(opt);
  EXPECT_EQ(a.agreed, b.agreed);
  EXPECT_EQ(a.mismatched, b.mismatched);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  ASSERT_FALSE(a.failures.empty());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(to_repro(a.failures[i].original, a.failures[i].notes),
              to_repro(b.failures[i].original, b.failures[i].notes));
    EXPECT_EQ(to_repro(a.failures[i].shrunk), to_repro(b.failures[i].shrunk));
  }
}

TEST(FuzzDiffer, RejectsWhatItCannotCompareSoundly) {
  Scenario s;
  s.seed = 1;
  s.config_text =
      "router R0\n bgp as 65000\n bgp aggregate 10.0.0.0/8\n"
      " bgp peer ISPa AS 100\n";
  const DiffResult r = diff_scenario(s, DiffOptions{});
  EXPECT_TRUE(r.config_rejected);
  EXPECT_FALSE(r.compared);

  Scenario bad;
  bad.seed = 2;
  bad.config_text = "router R0\n bgp as 65000\nrouter R0\n bgp as 65000\n";
  EXPECT_TRUE(diff_scenario(bad, DiffOptions{}).config_rejected);
}

}  // namespace
}  // namespace expresso::fuzz
