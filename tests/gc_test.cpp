// BDD garbage collection (label "gc").
//
// Three layers of coverage:
//   * Manager unit tests — root-set discipline (protect/unprotect, Rooted),
//     sweep reclamation and id reuse, unique-table compaction, operation-
//     cache invalidation across sweeps, chunk release, parallel-mode
//     operation after a sweep, trigger heuristics;
//   * GC-on vs GC-off equivalence — the incremental re-verification campaign
//     run twice, with every-boundary sweeps against no sweeps at all, and
//     all RIBs/PECs/verdicts compared bit-identical via
//     bdd::structurally_equal (scenario count tunable through
//     EXPRESSO_GC_SCENARIOS, default 200);
//   * bounded-memory soak — one Session driving hundreds of warm edits with
//     forced sweeps stays within the live reachable set while the identical
//     GC-off session grows without bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "ir/frontend.hpp"
#include "dataplane/forwarding.hpp"
#include "expresso/session.hpp"
#include "fuzz/edits.hpp"
#include "fuzz/generator.hpp"
#include "properties/analyzer.hpp"

namespace expresso {
namespace {

// --- Manager-level unit tests ----------------------------------------------

TEST(BddGc, SweepReclaimsDeadAndKeepsRooted) {
  bdd::Manager m(16);
  // Build a function to keep and a pile of garbage.
  const bdd::NodeId keep = m.and_(m.var(0), m.or_(m.var(1), m.nvar(2)));
  bdd::NodeId junk = bdd::kTrue;
  for (std::uint32_t v = 0; v < 16; ++v) junk = m.xor_(junk, m.var(v));
  const std::size_t before = m.live_nodes();
  ASSERT_GT(before, m.node_count(keep));

  m.protect(keep);
  const auto st = m.gc();
  EXPECT_EQ(st.before, before);
  EXPECT_EQ(st.live, m.live_nodes());
  EXPECT_EQ(st.before, st.live + st.reclaimed);
  EXPECT_GT(st.reclaimed, 0u);
  // Exactly the reachable set survives.
  EXPECT_EQ(st.live, m.node_count(keep));

  // The kept function is intact: rebuilding it lands on the same id
  // (hash-consing still canonical after the sweep).
  EXPECT_EQ(keep, m.and_(m.var(0), m.or_(m.var(1), m.nvar(2))));
  m.unprotect(keep);
}

TEST(BddGc, RootedRaiiProtectsForItsLifetime) {
  bdd::Manager m(8);
  bdd::NodeId f;
  {
    bdd::Manager::Rooted r(m, m.and_(m.var(0), m.var(1)));
    f = r.id();
    m.gc();
    // Rooted: exactly the reachable set survives the sweep.  (Checked before
    // the rebuild below, which re-allocates the swept var(0) node.)
    EXPECT_EQ(m.live_nodes(), m.node_count(f));
    // And it stays canonical.
    EXPECT_EQ(f, m.and_(m.var(0), m.var(1)));
  }
  // Handle gone: the next sweep reclaims it (terminals only remain).
  const auto st = m.gc();
  EXPECT_EQ(st.live, 2u);
}

TEST(BddGc, RootedMoveAndRebind) {
  bdd::Manager m(8);
  bdd::Manager::Rooted a(m, m.var(3));
  bdd::Manager::Rooted b = std::move(a);
  EXPECT_EQ(b.id(), m.var(3));
  b.reset(m, m.var(4));  // rebind unroots var(3)
  m.gc({b.id()});
  EXPECT_EQ(b.id(), m.var(4));
  b.reset();
  EXPECT_EQ(m.gc().live, 2u);
}

TEST(BddGc, ExtraRootsAreHonored) {
  bdd::Manager m(8);
  const bdd::NodeId f = m.or_(m.var(0), m.and_(m.var(1), m.var(2)));
  const auto st = m.gc({f});
  EXPECT_EQ(st.live, m.node_count(f));
  // Not a persistent root: the next sweep with no extras drops it.
  EXPECT_EQ(m.gc().live, 2u);
}

TEST(BddGc, IdsAreReusedAfterSweep) {
  bdd::Manager m(32);
  for (std::uint32_t v = 0; v < 32; ++v) m.var(v);
  m.gc();  // all 32 var nodes die
  const std::size_t allocated = m.total_nodes();
  // Rebuilding needs 48 slots (32 vars + 16 conjunctions): the 32 freed ids
  // must be reused, so the arena grows only by the 16-node excess.  Without
  // reuse it would grow by all 48.
  for (std::uint32_t v = 0; v < 16; ++v) m.and_(m.var(v), m.var(v + 16));
  EXPECT_EQ(m.total_nodes(), allocated + 16);
}

TEST(BddGc, OperationCachesInvalidatedAcrossSweep) {
  bdd::Manager m(24);
  // Populate the ITE cache with results that will die.
  std::vector<bdd::NodeId> old;
  for (std::uint32_t v = 0; v + 2 < 24; ++v) {
    old.push_back(m.ite(m.var(v), m.var(v + 1), m.var(v + 2)));
  }
  m.gc();
  // Reused ids + cleared caches: fresh operations must be semantically
  // correct, which we check against truth-table evaluation.
  for (std::uint32_t v = 0; v + 2 < 24; ++v) {
    const bdd::NodeId f = m.ite(m.var(v), m.var(v + 1), m.var(v + 2));
    std::vector<std::int8_t> a;
    ASSERT_TRUE(m.sat_one(f, a));
    // ite(x, y, z) with the extracted assignment must evaluate true.
    const auto val = [&](std::uint32_t var) { return a[var] == 1; };
    EXPECT_TRUE(val(v) ? val(v + 1) : val(v + 2));
    // Semantics pinned exactly: count over 3 free vars of ite = 4 of 8.
    EXPECT_DOUBLE_EQ(m.density(f), 0.5);
  }
}

TEST(BddGc, QuantificationCorrectAfterSweep) {
  bdd::Manager m(8);
  const bdd::NodeId f0 = m.and_(m.var(0), m.or_(m.var(1), m.var(2)));
  (void)m.exists(f0, {1});  // warm the quant cache
  m.gc();
  const bdd::NodeId f = m.and_(m.var(0), m.or_(m.var(1), m.var(2)));
  EXPECT_EQ(m.exists(f, {1}), m.var(0));
  EXPECT_EQ(m.exists(f, {0}), m.or_(m.var(1), m.var(2)));
}

TEST(BddGc, WholeChunksAreReleased) {
  bdd::Manager m(26);
  // Overflow chunk 0 (2^16 slots) with distinct dead nodes: a linear pass
  // of pairwise disjunctions over 2^14 product terms is plenty.
  bdd::NodeId acc = bdd::kFalse;
  for (std::uint32_t i = 0; i < (1u << 14); ++i) {
    bdd::NodeId term = bdd::kTrue;
    for (std::uint32_t b = 0; b < 14; ++b) {
      term = m.and_(term, ((i >> b) & 1u) ? m.var(b) : m.nvar(b));
    }
    acc = m.or_(acc, term);
  }
  ASSERT_GT(m.total_nodes(), std::size_t{1} << 16);
  const std::size_t bytes_full = m.approx_bytes();
  const auto st = m.gc();
  EXPECT_EQ(st.live, 2u);
  // Every chunk but chunk 0 died; the arena footprint must shrink.
  EXPECT_LT(m.approx_bytes(), bytes_full);
  // And the manager still works, reusing the freed ids.
  const bdd::NodeId f = m.and_(m.var(20), m.var(21));
  std::vector<std::int8_t> a;
  EXPECT_TRUE(m.sat_one(f, a));
}

TEST(BddGc, ParallelModeOperatesAfterSweep) {
  bdd::Manager m(16);
  m.prepare_threads(4);
  m.set_parallel(true);
  const bdd::NodeId keep = m.or_(m.var(0), m.var(1));
  m.protect(keep);
  for (std::uint32_t v = 2; v < 16; ++v) m.xor_(m.var(v), m.var(0));
  m.gc();
  EXPECT_EQ(keep, m.or_(m.var(0), m.var(1)));
  EXPECT_DOUBLE_EQ(m.density(keep), 0.75);
  m.unprotect(keep);
}

TEST(BddGc, PressureBudgetAndAdaptive) {
  bdd::Manager m(16);
  for (std::uint32_t v = 0; v < 10; ++v) m.var(v);
  // Explicit budget: exceeded only when live population passes it.
  EXPECT_TRUE(m.gc_pressure(4));
  EXPECT_FALSE(m.gc_pressure(1u << 20));
  // Adaptive mode never fires below the floor population.
  EXPECT_FALSE(m.gc_pressure(0));
}

TEST(BddGc, TelemetryTracksSweeps) {
  bdd::Manager m(16);
  for (std::uint32_t v = 0; v < 16; ++v) m.and_(m.var(v), m.nvar(v ^ 1));
  const auto t0 = m.telemetry();
  EXPECT_EQ(t0.gc_runs, 0u);
  EXPECT_EQ(t0.nodes, m.live_nodes());
  const auto st = m.gc();
  const auto t1 = m.telemetry();
  EXPECT_EQ(t1.gc_runs, 1u);
  EXPECT_EQ(t1.gc_reclaimed, st.reclaimed);
  EXPECT_EQ(t1.gc_last_live, st.live);
  EXPECT_EQ(t1.nodes, st.live);
  EXPECT_EQ(t1.allocated_total, t0.allocated_total);
}

// --- cross-manager artifact comparison helpers (as in incremental_test) ----

bool route_equiv(const bdd::Manager& ma, const symbolic::SymbolicRoute& a,
                 const bdd::Manager& mb, const symbolic::SymbolicRoute& b) {
  const auto& x = a.attrs;
  const auto& y = b.attrs;
  return x.local_pref == y.local_pref && x.origin == y.origin &&
         x.med == y.med && x.learned == y.learned && x.source == y.source &&
         x.next_hop == y.next_hop && x.originator == y.originator &&
         x.aspath == y.aspath &&
         bdd::structurally_equal(ma, x.comm.as_bdd(), mb, y.comm.as_bdd()) &&
         bdd::structurally_equal(ma, a.d, mb, b.d);
}

bool rib_equiv(const bdd::Manager& ma,
               const std::vector<symbolic::SymbolicRoute>& a,
               const bdd::Manager& mb,
               const std::vector<symbolic::SymbolicRoute>& b) {
  if (a.size() != b.size()) return false;
  std::vector<bool> used(b.size(), false);
  for (const auto& ra : a) {
    bool found = false;
    for (std::size_t j = 0; j < b.size() && !found; ++j) {
      if (!used[j] && route_equiv(ma, ra, mb, b[j])) {
        used[j] = true;
        found = true;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool pecs_equiv(const bdd::Manager& ma, const std::vector<dataplane::Pec>& a,
                const bdd::Manager& mb, const std::vector<dataplane::Pec>& b) {
  if (a.size() != b.size()) return false;
  std::vector<bool> used(b.size(), false);
  for (const auto& pa : a) {
    bool found = false;
    for (std::size_t j = 0; j < b.size() && !found; ++j) {
      if (!used[j] && b[j].state == pa.state && b[j].path == pa.path &&
          bdd::structurally_equal(ma, pa.pkt, mb, b[j].pkt)) {
        used[j] = true;
        found = true;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool verdicts_equiv(const bdd::Manager& ma,
                    const std::vector<properties::Violation>& a,
                    const bdd::Manager& mb,
                    const std::vector<properties::Violation>& b) {
  if (a.size() != b.size()) return false;
  std::vector<bool> used(b.size(), false);
  for (const auto& va : a) {
    bool found = false;
    for (std::size_t j = 0; j < b.size() && !found; ++j) {
      if (!used[j] && b[j].property == va.property && b[j].node == va.node &&
          bdd::structurally_equal(ma, va.condition, mb, b[j].condition)) {
        used[j] = true;
        found = true;
      }
    }
    if (!found) return false;
  }
  return true;
}

int env_count(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    return std::max(1, std::atoi(env));
  }
  return fallback;
}

Session::SessionOptions gc_on_options() {
  Session::SessionOptions opt;
  opt.bdd_gc = true;
  opt.max_bdd_nodes = 1;  // always under pressure: sweep at every boundary
  return opt;
}

Session::SessionOptions gc_off_options() {
  Session::SessionOptions opt;
  opt.bdd_gc = false;
  return opt;
}

// --- GC-on vs GC-off equivalence campaign ----------------------------------

// The incremental campaign's shape (fuzzed base + one random edit, warm
// update), run under forced every-boundary sweeps and under no GC at all.
// Sweeping must be invisible in every artifact.
TEST(GcEquivalence, SweptSessionMatchesUnsweptAcrossFuzzedEdits) {
  const int n = env_count("EXPRESSO_GC_SCENARIOS", 200);
  int swept = 0;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t seed = 0x6c000000u + static_cast<std::uint64_t>(i);
    const auto sc = fuzz::generate_scenario(seed);
    std::vector<ir::RouterConfig> base;
    try {
      base = ir::parse_configs(sc.config_text);
    } catch (const std::exception&) {
      continue;
    }
    const auto edit = fuzz::apply_random_edit(base, seed * 7919 + 13);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " router=" + edit.router +
                 " edit=" + edit.description);

    Session on(gc_on_options());
    on.load(base);
    on.run_src();
    on.update(edit.configs);

    Session off(gc_off_options());
    off.load(base);
    off.run_src();
    off.update(edit.configs);

    on.run_src();
    off.run_src();
    ASSERT_EQ(on.stats().converged, off.stats().converged);
    if (!on.stats().converged) continue;

    const auto& ma = on.engine().encoding().mgr();
    const auto& mb = off.engine().encoding().mgr();
    if (ma.telemetry().gc_runs > 0) ++swept;

    const auto& nodes = on.network().nodes();
    for (net::NodeIndex u = 0; u < nodes.size(); ++u) {
      const bool ext = nodes[u].external;
      ASSERT_TRUE(rib_equiv(
          ma, ext ? on.engine().external_rib(u) : on.engine().rib(u), mb,
          ext ? off.engine().external_rib(u) : off.engine().rib(u)))
          << "RIB mismatch at " << nodes[u].name;
    }
    ASSERT_TRUE(pecs_equiv(ma, on.pecs(), mb, off.pecs()));
    ASSERT_TRUE(verdicts_equiv(ma, on.check_route_leak_free(), mb,
                               off.check_route_leak_free()));
    ASSERT_TRUE(verdicts_equiv(ma, on.check_loop_free(), mb,
                               off.check_loop_free()));
    ASSERT_TRUE(verdicts_equiv(ma, on.check_traffic_hijack_free(), mb,
                               off.check_traffic_hijack_free()));
  }
  EXPECT_GT(swept, 0) << "forced-GC sessions never actually swept";
}

// --- bounded-memory soak ----------------------------------------------------

// One long-lived Session under forced sweeps digests >= 200 warm edits with
// its node population pinned to the live reachable set, while the identical
// GC-off session only ever grows.  Verdicts and PEC predicates stay
// bit-identical between the two throughout.
TEST(GcSoak, LongLivedSessionStaysBounded) {
  const int kEdits = env_count("EXPRESSO_GC_SOAK_EDITS", 200);
  const std::uint64_t seed = 0x50a7c0deu;
  const auto sc = fuzz::generate_scenario(seed);
  auto snapshot = ir::parse_configs(sc.config_text);

  Session on(gc_on_options());
  Session off(gc_off_options());
  on.load(snapshot);
  off.load(snapshot);
  on.run_spf();
  off.run_spf();

  std::size_t on_peak = 0;
  std::size_t off_peak = 0;
  std::size_t off_prev = 0;
  bool off_grew = false;
  int applied = 0;
  std::uint64_t edit_seed = seed;
  while (applied < kEdits) {
    // Universe-preserving edits only: the soak measures the warm path, and a
    // cold restart would reset the GC-off session's manager and void the
    // monotonic-growth comparison.
    const fuzz::Edit edit = fuzz::apply_random_edit(
        snapshot, edit_seed * 6364136223846793005ull + 1442695040888963407ull);
    edit_seed += 1;
    if (edit.universe_changing) continue;
    ++applied;
    SCOPED_TRACE("step=" + std::to_string(applied) + " edit=" +
                 edit.description);
    snapshot = edit.configs;

    on.update(snapshot);
    off.update(snapshot);
    on.run_spf();
    off.run_spf();
    ASSERT_EQ(on.stats().converged, off.stats().converged);
    if (!on.stats().converged) continue;

    const auto& ma = on.engine().encoding().mgr();
    const auto& mb = off.engine().encoding().mgr();

    // Bit-identity of the verification outputs at every step.
    ASSERT_TRUE(verdicts_equiv(ma, on.check_loop_free(), mb,
                               off.check_loop_free()));
    if (applied % 20 == 0) {
      ASSERT_TRUE(pecs_equiv(ma, on.pecs(), mb, off.pecs()));
      ASSERT_TRUE(verdicts_equiv(ma, on.check_route_leak_free(), mb,
                                 off.check_route_leak_free()));
    }

    // A nominally universe-preserving edit can still cold-restart the
    // session (Edit::universe_changing is advisory; the session re-checks
    // the real universe).  Both sessions restart together, replacing their
    // managers — reset the GC-off monotonic baseline at that point instead
    // of comparing populations across two different managers.
    if (!off.stats().warm) off_prev = 0;

    // GC-off only grows (no reclamation exists on that side) ...
    const std::size_t off_nodes = mb.telemetry().nodes;
    ASSERT_GE(off_nodes, off_prev);
    if (off_nodes > off_prev) off_grew = true;
    off_prev = off_nodes;
    off_peak = std::max(off_peak, off_nodes);

    // ... while the swept session stays pinned to its reachable set: force a
    // sweep and the manager's population must match the mark phase exactly
    // (<= 2x is the acceptance bound; equality is what the design delivers).
    const auto st = on.collect_bdd_garbage();
    const std::size_t on_nodes = ma.telemetry().nodes;
    ASSERT_EQ(on_nodes, st.live);
    ASSERT_LE(on_nodes, 2 * st.live);
    on_peak = std::max(on_peak, on_nodes);
  }

  ASSERT_GE(applied, kEdits);  // >= 200 by default; env-reduced runs scale
  EXPECT_TRUE(off_grew) << "soak produced no growth to reclaim";
  const auto ton = on.engine().encoding().mgr().telemetry();
  EXPECT_GT(ton.gc_runs, 0u);
  EXPECT_GT(ton.gc_reclaimed, 0u);
  // The unswept session's peak population dominates the swept session's
  // peak: the sweeps reclaimed real garbage, not bookkeeping noise.
  EXPECT_GT(off_peak, on_peak);
}

}  // namespace
}  // namespace expresso
