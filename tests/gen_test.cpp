// Dataset generators: structural checks plus end-to-end verification that
// every planted misconfiguration class is actually found by the verifier
// (and that un-planted regions are clean).
#include "gen/datasets.hpp"

#include <gtest/gtest.h>

#include <set>

#include "ir/frontend.hpp"

#include "expresso/verifier.hpp"

namespace expresso::gen {
namespace {

using properties::Property;

TEST(RegionGenTest, CleanRegionHasNoViolations) {
  RegionSpec spec;
  spec.name = "clean";
  spec.num_pr = 3;
  spec.num_rr = 1;
  spec.num_dr = 1;
  spec.num_peers = 4;
  spec.num_prefixes = 8;
  const Dataset d = make_region(spec, 0, 1);
  EXPECT_TRUE(d.planted.empty());

  Verifier v(d.config_text);
  EXPECT_TRUE(v.check_route_leak_free().empty());
  EXPECT_TRUE(v.check_route_hijack_free().empty());
  EXPECT_TRUE(v.check_traffic_hijack_free().empty());
  EXPECT_TRUE(v.check_loop_free().empty());
  EXPECT_TRUE(v.stats().converged);
}

TEST(RegionGenTest, MissingDenyLeakIsFound) {
  RegionSpec spec;
  spec.num_pr = 3;
  spec.num_rr = 1;
  spec.num_dr = 1;
  spec.num_peers = 4;
  spec.num_prefixes = 8;
  spec.leaks_missing_deny = 1;
  const Dataset d = make_region(spec, 0, 1);
  ASSERT_EQ(d.planted.size(), 1u);
  EXPECT_EQ(d.planted[0].kind, Property::kRouteLeakFree);

  Verifier v(d.config_text);
  const auto leaks = v.check_route_leak_free();
  ASSERT_FALSE(leaks.empty());
  // Every leak lands at the neighbor with the permissive export policy.
  for (const auto& viol : leaks) {
    EXPECT_EQ(v.network().node(viol.node).name, "isp0_0");
  }
  EXPECT_TRUE(v.check_route_hijack_free().empty());
}

TEST(RegionGenTest, MissingAdvertiseCommunityLeakIsFound) {
  RegionSpec spec;
  spec.num_pr = 3;
  spec.num_rr = 1;
  spec.num_dr = 1;
  spec.num_peers = 4;
  spec.num_prefixes = 8;
  spec.leaks_missing_adv_comm = 1;
  const Dataset d = make_region(spec, 0, 1);
  ASSERT_EQ(d.planted.size(), 1u);

  Verifier v(d.config_text);
  const auto leaks = v.check_route_leak_free();
  // The figure-4-style strip: routes imported at pr0_2 lose their tag on
  // the way to the RR, so every other PR's no-transit deny stops firing.
  EXPECT_FALSE(leaks.empty());
}

TEST(RegionGenTest, UnfilteredInterfaceHijackIsFound) {
  RegionSpec spec;
  spec.num_pr = 3;
  spec.num_rr = 1;
  spec.num_dr = 1;
  spec.num_peers = 4;
  spec.num_prefixes = 8;
  spec.hijacks_unfiltered_iface = 1;
  const Dataset d = make_region(spec, 0, 1);
  ASSERT_EQ(d.planted.size(), 1u);
  EXPECT_EQ(d.planted[0].kind, Property::kRouteHijackFree);

  Verifier v(d.config_text);
  const auto hijacks = v.check_route_hijack_free();
  ASSERT_FALSE(hijacks.empty());
  // The hijacked prefix is the planted 172.31/31 interface; the hijacker is
  // always an external neighbor.
  for (const auto& viol : hijacks) {
    EXPECT_FALSE(v.network().node(viol.node).external);
    EXPECT_NE(viol.condition, bdd::kFalse);
  }
  EXPECT_TRUE(v.check_route_leak_free().empty());
}

TEST(RegionGenTest, StaticDefaultTrafficHijackIsFound) {
  RegionSpec spec;
  spec.num_pr = 3;
  spec.num_rr = 1;
  spec.num_dr = 1;
  spec.num_peers = 4;
  spec.num_prefixes = 8;
  spec.traffic_hijack_default = 1;
  const Dataset d = make_region(spec, 0, 1);
  ASSERT_EQ(d.planted.size(), 1u);
  EXPECT_EQ(d.planted[0].kind, Property::kTrafficHijackFree);

  Verifier v(d.config_text);
  const auto thijacks = v.check_traffic_hijack_free();
  ASSERT_FALSE(thijacks.empty());
  // The hijacked traffic starts at the static-default PR (pr0_2).
  bool from_pr2 = false;
  for (const auto& viol : thijacks) {
    from_pr2 = from_pr2 || v.network().node(viol.node).name == "pr0_2";
  }
  EXPECT_TRUE(from_pr2);
  EXPECT_TRUE(v.check_route_leak_free().empty());
}

TEST(CspWanTest, OldSnapshotStatisticsMatchTable1Magnitudes) {
  const Dataset d = make_csp_wan(Snapshot::kOld, 7);
  // Table 1 reports O(30) nodes, O(100) links, O(90) peers, O(3k) prefixes,
  // O(54k) config lines for the old full snapshot.
  EXPECT_GE(d.nodes, 20u);
  EXPECT_LE(d.nodes, 50u);
  EXPECT_GE(d.peers, 70u);
  EXPECT_LE(d.peers, 120u);
  EXPECT_GE(d.prefixes, 2000u);
  EXPECT_GE(d.config_lines, 10000u);
  EXPECT_FALSE(d.planted.empty());
  // The snapshot parses and builds.
  auto net = net::Network::build(ir::parse_configs(d.config_text));
  EXPECT_EQ(net.num_internal(), d.nodes);
  EXPECT_EQ(net.num_external(), d.peers);
}

TEST(CspWanTest, NewSnapshotIsLarger) {
  const Dataset oldd = make_csp_wan(Snapshot::kOld, 7);
  const Dataset newd = make_csp_wan(Snapshot::kNew, 7);
  EXPECT_GT(newd.nodes, 2 * oldd.nodes);
  EXPECT_GT(newd.peers, 2 * oldd.peers);
  EXPECT_GT(newd.prefixes, 2 * oldd.prefixes);
  EXPECT_GT(newd.planted.size(), oldd.planted.size());
}

TEST(CspWanTest, PeerLimitCapsNeighbors) {
  const Dataset d = make_csp_wan(Snapshot::kOld, 7, 10);
  auto net = net::Network::build(ir::parse_configs(d.config_text));
  EXPECT_LE(net.num_external(), 10u);
}

TEST(Internet2Test, FourReachableViolationsAndOneStripped) {
  const Dataset d = make_internet2(3, 40, 100);
  EXPECT_EQ(d.nodes, 10u);
  EXPECT_EQ(d.peers, 40u);
  // 4 reachable plants + 1 stripped-session plant.
  ASSERT_EQ(d.planted.size(), 5u);

  Verifier v(d.config_text);
  const auto viols = v.check_block_to_external(internet2_bte());
  ASSERT_FALSE(viols.empty());
  // Expresso flags exactly the 4 neighbors whose sessions miss the deny AND
  // advertise communities (table 4's Expresso count); the stripped session
  // (peer36) is invisible to it but visible to policy-local checkers.
  std::set<std::string> flagged;
  for (const auto& viol : viols) {
    flagged.insert(v.network().node(viol.node).name);
  }
  EXPECT_EQ(flagged,
            (std::set<std::string>{"peer5", "peer13", "peer20", "peer32"}));
}

}  // namespace
}  // namespace expresso::gen
