// Incremental re-verification equivalence: across fuzz-generated networks
// and random single-router edits, a Session that warm-starts from the
// previous snapshot's fixed point must produce results bit-identical to a
// fresh cold Session on the edited snapshot.
//
// The two sessions own different BDD managers, so "bit-identical" is decided
// by bdd::structurally_equal (same variable order + ROBDD canonicity make
// graph isomorphism coincide with semantic equality).  Route `prop_path` and
// violation report text are excluded from comparison: merge coalescing keeps
// the first candidate's propagation path, which is candidate-order dependent
// and not part of route identity (symbolic::same_rib ignores it for the same
// reason).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "bdd/bdd.hpp"
#include "ir/frontend.hpp"
#include "expresso/session.hpp"
#include "fuzz/edits.hpp"
#include "fuzz/generator.hpp"
#include "properties/analyzer.hpp"

namespace expresso {
namespace {

bool route_equiv(const bdd::Manager& ma, const symbolic::SymbolicRoute& a,
                 const bdd::Manager& mb, const symbolic::SymbolicRoute& b) {
  const auto& x = a.attrs;
  const auto& y = b.attrs;
  return x.local_pref == y.local_pref && x.origin == y.origin &&
         x.med == y.med && x.learned == y.learned && x.source == y.source &&
         x.next_hop == y.next_hop && x.originator == y.originator &&
         x.aspath == y.aspath &&
         bdd::structurally_equal(ma, x.comm.as_bdd(), mb, y.comm.as_bdd()) &&
         bdd::structurally_equal(ma, a.d, mb, b.d);
}

// Multiset equality of two RIBs across managers (merge output order is
// candidate-order dependent; RIBs are small, so O(n^2) matching is fine).
bool rib_equiv(const bdd::Manager& ma,
               const std::vector<symbolic::SymbolicRoute>& a,
               const bdd::Manager& mb,
               const std::vector<symbolic::SymbolicRoute>& b) {
  if (a.size() != b.size()) return false;
  std::vector<bool> used(b.size(), false);
  for (const auto& ra : a) {
    bool found = false;
    for (std::size_t j = 0; j < b.size() && !found; ++j) {
      if (!used[j] && route_equiv(ma, ra, mb, b[j])) {
        used[j] = true;
        found = true;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool pecs_equiv(const bdd::Manager& ma, const std::vector<dataplane::Pec>& a,
                const bdd::Manager& mb, const std::vector<dataplane::Pec>& b) {
  if (a.size() != b.size()) return false;
  std::vector<bool> used(b.size(), false);
  for (const auto& pa : a) {
    bool found = false;
    for (std::size_t j = 0; j < b.size() && !found; ++j) {
      if (!used[j] && b[j].state == pa.state &&
          b[j].path == pa.path &&
          bdd::structurally_equal(ma, pa.pkt, mb, b[j].pkt)) {
        used[j] = true;
        found = true;
      }
    }
    if (!found) return false;
  }
  return true;
}

// Verdict identity: (property, node, condition) multisets.  Paths/details
// may differ through prop_path while describing the same violation.
bool verdicts_equiv(const bdd::Manager& ma,
                    const std::vector<properties::Violation>& a,
                    const bdd::Manager& mb,
                    const std::vector<properties::Violation>& b) {
  if (a.size() != b.size()) return false;
  std::vector<bool> used(b.size(), false);
  for (const auto& va : a) {
    bool found = false;
    for (std::size_t j = 0; j < b.size() && !found; ++j) {
      if (!used[j] && b[j].property == va.property && b[j].node == va.node &&
          bdd::structurally_equal(ma, va.condition, mb, b[j].condition)) {
        used[j] = true;
        found = true;
      }
    }
    if (!found) return false;
  }
  return true;
}

int scenario_count() {
  if (const char* env = std::getenv("EXPRESSO_INCREMENTAL_SCENARIOS")) {
    return std::max(1, std::atoi(env));
  }
  return 200;
}

TEST(IncrementalEquivalence, WarmUpdateMatchesColdRunAcrossFuzzedEdits) {
  const int n = scenario_count();
  int warm_runs = 0;
  int cold_runs = 0;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t seed = 0xa11ce000u + static_cast<std::uint64_t>(i);
    const auto sc = fuzz::generate_scenario(seed);
    std::vector<ir::RouterConfig> base;
    try {
      base = ir::parse_configs(sc.config_text);
    } catch (const std::exception&) {
      continue;  // generator emits only parseable text; belt and braces
    }
    const auto edit = fuzz::apply_random_edit(base, seed * 7919 + 13);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " router=" + edit.router +
                 " edit=" + edit.description);

    Session warm;
    warm.load(base);
    warm.run_src();  // converge on the base snapshot to create the seed
    warm.update(edit.configs);

    Session cold;
    cold.load(edit.configs);

    warm.run_src();
    cold.run_src();
    ASSERT_EQ(warm.stats().converged, cold.stats().converged);
    if (!warm.stats().converged) continue;
    (warm.stats().warm ? warm_runs : cold_runs) += 1;

    const auto& me = warm.engine().encoding().mgr();
    const auto& mc = cold.engine().encoding().mgr();
    const auto& nodes = warm.network().nodes();
    ASSERT_EQ(nodes.size(), cold.network().nodes().size());
    for (net::NodeIndex u = 0; u < nodes.size(); ++u) {
      if (nodes[u].external) {
        ASSERT_TRUE(rib_equiv(me, warm.engine().external_rib(u), mc,
                              cold.engine().external_rib(u)))
            << "external RIB mismatch at " << nodes[u].name;
      } else {
        ASSERT_TRUE(
            rib_equiv(me, warm.engine().rib(u), mc, cold.engine().rib(u)))
            << "RIB mismatch at " << nodes[u].name;
      }
    }

    ASSERT_TRUE(pecs_equiv(me, warm.pecs(), mc, cold.pecs()));

    ASSERT_TRUE(verdicts_equiv(me, warm.check_route_leak_free(), mc,
                               cold.check_route_leak_free()));
    ASSERT_TRUE(verdicts_equiv(me, warm.check_route_hijack_free(), mc,
                               cold.check_route_hijack_free()));
    ASSERT_TRUE(verdicts_equiv(me, warm.check_loop_free(), mc,
                               cold.check_loop_free()));
    ASSERT_TRUE(verdicts_equiv(me, warm.check_traffic_hijack_free(), mc,
                               cold.check_traffic_hijack_free()));
    ASSERT_TRUE(verdicts_equiv(me, warm.check_blackhole_free(sc.pool), mc,
                               cold.check_blackhole_free(sc.pool)));
  }
  // The edit mix must exercise both invalidation paths.
  EXPECT_GT(warm_runs, 0) << "no scenario took the warm path";
  EXPECT_GT(cold_runs, 0) << "no scenario took the cold path";
}

// A chain of edits against one long-lived session: each update re-verifies
// against a fresh cold session, and the session survives universe changes
// (cold restart) mid-chain.  The chain runs under verify_warm: fuzzed
// networks can have several stable states (chain seed 0xc4a1500a step 0 is a
// real instance — the warm run settles in a genuine fixed point that differs
// from the cold one), and verify_warm is exactly the knob that restores
// cold-equivalence there, by shadowing each warm run and preferring the cold
// result on disagreement.  This also keeps the shadow-disagreement fallback
// exercised in CI.
TEST(IncrementalEquivalence, EditChainsStayEquivalent) {
  const int kChains = 20;
  const int kEditsPerChain = 5;
  for (int c = 0; c < kChains; ++c) {
    const std::uint64_t seed = 0xc4a15000u + static_cast<std::uint64_t>(c);
    const auto sc = fuzz::generate_scenario(seed);
    auto snapshot = ir::parse_configs(sc.config_text);

    Session::SessionOptions opt;
    opt.verify_warm = true;
    Session live(opt);
    live.load(snapshot);
    live.run_src();
    for (int e = 0; e < kEditsPerChain; ++e) {
      const auto edit = fuzz::apply_random_edit(
          snapshot, seed + 31 * static_cast<std::uint64_t>(e) + 7);
      SCOPED_TRACE("seed=" + std::to_string(seed) + " step=" +
                   std::to_string(e) + " edit=" + edit.description);
      snapshot = edit.configs;
      live.update(snapshot);

      Session cold;
      cold.load(snapshot);
      live.run_src();
      cold.run_src();
      ASSERT_EQ(live.stats().converged, cold.stats().converged);
      if (!live.stats().converged) break;

      const auto& me = live.engine().encoding().mgr();
      const auto& mc = cold.engine().encoding().mgr();
      for (net::NodeIndex u = 0; u < live.network().nodes().size(); ++u) {
        const bool ext = live.network().nodes()[u].external;
        ASSERT_TRUE(rib_equiv(
            me, ext ? live.engine().external_rib(u) : live.engine().rib(u),
            mc, ext ? cold.engine().external_rib(u) : cold.engine().rib(u)))
            << "RIB mismatch at " << live.network().nodes()[u].name;
      }
      ASSERT_TRUE(verdicts_equiv(me, live.check_loop_free(), mc,
                                 cold.check_loop_free()));
    }
  }
}

// verify_warm in the loop: the session shadows every warm SRC run with a
// cold run over the same substrate and prefers the cold result on any
// disagreement, so its answers are cold-equivalent by construction.  Kept
// small — each scenario pays a full cold run — but enough to exercise the
// shadow path in every CI pass (check.sh runs `-L incremental`).
TEST(IncrementalEquivalence, VerifyWarmShadowMatchesColdSession) {
  const int kScenarios = 10;
  for (int i = 0; i < kScenarios; ++i) {
    const std::uint64_t seed = 0x5eed0000u + static_cast<std::uint64_t>(i);
    const auto sc = fuzz::generate_scenario(seed);
    const auto base = ir::parse_configs(sc.config_text);
    const auto edit = fuzz::apply_random_edit(base, seed * 104729 + 3);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " edit=" +
                 edit.description);

    Session::SessionOptions opt;
    opt.verify_warm = true;
    Session warm(opt);
    warm.load(base);
    warm.run_src();
    warm.update(edit.configs);

    Session cold;
    cold.load(edit.configs);
    warm.run_src();
    cold.run_src();
    ASSERT_EQ(warm.stats().converged, cold.stats().converged);
    if (!warm.stats().converged) continue;

    const auto& me = warm.engine().encoding().mgr();
    const auto& mc = cold.engine().encoding().mgr();
    for (net::NodeIndex u = 0; u < warm.network().nodes().size(); ++u) {
      const bool ext = warm.network().nodes()[u].external;
      ASSERT_TRUE(rib_equiv(
          me, ext ? warm.engine().external_rib(u) : warm.engine().rib(u),
          mc, ext ? cold.engine().external_rib(u) : cold.engine().rib(u)))
          << "RIB mismatch at " << warm.network().nodes()[u].name;
    }
    ASSERT_TRUE(pecs_equiv(me, warm.pecs(), mc, cold.pecs()));
    ASSERT_TRUE(verdicts_equiv(me, warm.check_loop_free(), mc,
                               cold.check_loop_free()));
  }
}

}  // namespace
}  // namespace expresso
