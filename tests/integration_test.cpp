// End-to-end pipeline invariants over generated snapshots, swept across
// seeds and engine variants:
//
//   * EPVP converges;
//   * per router, the LPM-resolved port predicates (local / per-peer /
//     drop) PARTITION the packet ⨯ environment space — nothing is
//     forwarded two ways, nothing is lost;
//   * the PECs injected at each node partition the space as well (the SRE
//     property Expresso inherits);
//   * every reported violation carries a satisfiable condition;
//   * the Expresso- and automaton-community variants agree with the
//     default configuration on which neighbors are affected by leaks.
#include <gtest/gtest.h>

#include <set>

#include "dataplane/forwarding.hpp"
#include "expresso/verifier.hpp"
#include "gen/datasets.hpp"

namespace expresso {
namespace {

struct Case {
  std::uint64_t seed;
  int peers;
  bool plant;
};

class PipelineInvariantTest : public ::testing::TestWithParam<Case> {};

TEST_P(PipelineInvariantTest, PortPredicatesAndPecsPartition) {
  const auto param = GetParam();
  gen::RegionSpec spec;
  spec.num_pr = 3;
  spec.num_rr = 1;
  spec.num_dr = 2;
  spec.num_peers = param.peers;
  spec.num_prefixes = 24;
  if (param.plant) {
    spec.leaks_missing_deny = 1;
    spec.hijacks_unfiltered_iface = 1;
    spec.traffic_hijack_default = 1;
  }
  const auto d = gen::make_region(spec, 0, param.seed);

  Verifier v(d.config_text);
  v.run_spf();
  ASSERT_TRUE(v.stats().converged);

  auto& eng = v.engine();
  auto& m = eng.encoding().mgr();

  // Rebuild the FIBs to inspect port predicates directly.
  dataplane::FibBuilder fibs(eng);
  for (const auto u : v.network().internal_nodes()) {
    const auto& pp = fibs.ports(u);
    std::vector<bdd::NodeId> parts{pp.local, pp.drop};
    for (const auto& [peer, pred] : pp.to_peer) {
      (void)peer;
      parts.push_back(pred);
    }
    bdd::NodeId all = bdd::kFalse;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      for (std::size_t j = i + 1; j < parts.size(); ++j) {
        EXPECT_EQ(m.and_(parts[i], parts[j]), bdd::kFalse)
            << "overlapping port predicates at "
            << v.network().node(u).name;
      }
      all = m.or_(all, parts[i]);
    }
    EXPECT_EQ(all, bdd::kTrue)
        << "port predicates do not cover the space at "
        << v.network().node(u).name;
  }

  // PEC partition per injection point.
  dataplane::Forwarder fwd(eng, fibs);
  for (net::NodeIndex u = 0; u < v.network().nodes().size(); ++u) {
    const auto pecs = fwd.pecs_from(u);
    if (v.network().node(u).external &&
        v.network().in_edges()[u].empty()) {
      continue;
    }
    bdd::NodeId all = bdd::kFalse;
    for (std::size_t i = 0; i < pecs.size(); ++i) {
      EXPECT_NE(pecs[i].pkt, bdd::kFalse);
      for (std::size_t j = i + 1; j < pecs.size(); ++j) {
        // Replicas from the same start with identical predicates cannot
        // overlap unless they took different paths from an external
        // multi-PoP injection (one replica per entry router).
        if (v.network().node(u).external) continue;
        EXPECT_EQ(m.and_(pecs[i].pkt, pecs[j].pkt), bdd::kFalse)
            << "overlapping PECs from " << v.network().node(u).name;
      }
      all = m.or_(all, pecs[i].pkt);
    }
    if (!v.network().node(u).external && !pecs.empty()) {
      EXPECT_EQ(all, bdd::kTrue)
          << "PECs do not cover the space from "
          << v.network().node(u).name;
    }
  }

  // Violation conditions are satisfiable and well-attributed.
  for (const auto& viol : v.check_route_leak_free()) {
    EXPECT_NE(viol.condition, bdd::kFalse);
    EXPECT_TRUE(v.network().node(viol.node).external);
  }
  for (const auto& viol : v.check_route_hijack_free()) {
    EXPECT_NE(viol.condition, bdd::kFalse);
    EXPECT_FALSE(v.network().node(viol.node).external);
  }
  if (param.plant) {
    EXPECT_FALSE(v.check_route_leak_free().empty());
    EXPECT_FALSE(v.check_route_hijack_free().empty());
    EXPECT_FALSE(v.check_traffic_hijack_free().empty());
  } else {
    EXPECT_TRUE(v.check_route_leak_free().empty());
    EXPECT_TRUE(v.check_route_hijack_free().empty());
    EXPECT_TRUE(v.check_traffic_hijack_free().empty());
  }
}

TEST_P(PipelineInvariantTest, VariantsAgreeOnAffectedNeighbors) {
  const auto param = GetParam();
  gen::RegionSpec spec;
  spec.num_pr = 3;
  spec.num_rr = 1;
  spec.num_dr = 1;
  spec.num_peers = param.peers;
  spec.num_prefixes = 12;
  if (param.plant) spec.leaks_missing_deny = 1;
  const auto d = gen::make_region(spec, 0, param.seed);

  auto affected = [&](epvp::Options opt) {
    Verifier v(d.config_text, opt);
    std::set<std::string> nodes;
    for (const auto& viol : v.check_route_leak_free()) {
      nodes.insert(v.network().node(viol.node).name);
    }
    return nodes;
  };

  const auto base = affected({});
  epvp::Options minus;
  minus.aspath_mode = automaton::AsPathMode::kConcrete;
  EXPECT_EQ(affected(minus), base);
  epvp::Options aut;
  aut.comm_rep = symbolic::CommunityRep::kAutomaton;
  EXPECT_EQ(affected(aut), base);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PipelineInvariantTest,
                         ::testing::Values(Case{1, 3, false}, Case{2, 3, true},
                                           Case{3, 5, false}, Case{4, 5, true},
                                           Case{5, 4, true}, Case{6, 6, false}));

}  // namespace
}  // namespace expresso
