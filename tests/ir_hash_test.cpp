// Hash coverage over the policy IR (src/ir/hash.cpp).
//
// The Session's artifact keys are only sound if *every* semantically
// meaningful IR field feeds ast_hash — a field the hash misses is an edit
// the cache will silently serve stale results for.  This suite makes that
// provable and keeps it true as the IR grows:
//
//   * MemberCountTripwires pins the aggregate member count of every IR
//     struct with structured bindings.  Adding a field breaks compilation
//     here, forcing a deliberate decision for ast_hash()/dataplane_hash()
//     and an entry in the mutation table below.
//   * EveryIrFieldFeedsAstHash mutates each field in isolation and demands
//     a different ast_hash — and, for exactly the fields the post-SRC
//     stages read directly (name, networks, aggregates, statics, connected,
//     redistribute_static), a different dataplane_hash, while every other
//     mutation must leave dataplane_hash untouched (a dataplane key that
//     moved on a policy edit would defeat RIB-equality revalidation).
#include "ir/hash.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "ir/frontend.hpp"

namespace expresso::ir {
namespace {

net::Ipv4Prefix pfx(const char* text) { return *net::Ipv4Prefix::parse(text); }

// A baseline router exercising every field with a non-default value, so
// each mutation below flips exactly one field against a "busy" background.
RouterConfig base_config() {
  RouterConfig r;
  r.name = "R1";
  r.asn = 65001;
  r.networks = {pfx("10.0.0.0/16")};
  r.aggregates = {pfx("10.0.0.0/8")};
  r.statics = {StaticRoute{pfx("10.1.0.0/16"), "R2"}};
  r.connected = {pfx("10.0.9.0/31")};
  r.redistribute_static = true;
  r.redistribute_connected = false;

  PolicyClause c;
  c.permit = true;
  c.node = 10;
  c.match_prefixes = {net::PrefixMatch::range(pfx("20.0.0.0/8"), 16, 24)};
  c.match_communities = {*net::CommunityMatcher::parse("300:100")};
  c.match_as_path = ".*100";
  c.set_local_preference = 200;
  c.add_communities = {*net::Community::parse("300:1")};
  c.delete_communities = {*net::Community::parse("300:2")};
  c.prepend_as = 65001;
  r.policies["p"] = {c};

  PeerStmt peer;
  peer.peer = "E1";
  peer.peer_as = 100;
  peer.import_policy = "p";
  peer.export_policy = "p";
  r.peers = {peer};
  return r;
}

struct Mutation {
  const char* field;
  std::function<void(RouterConfig&)> apply;
  // Whether dataplane_hash must move too: exactly the fields read directly
  // by FibBuilder / internal_prefixes (see ir/hash.hpp).
  bool dataplane;
};

std::vector<Mutation> mutations() {
  auto clause = [](RouterConfig& r) -> PolicyClause& {
    return r.policies["p"][0];
  };
  return {
      // --- RouterConfig, member by member --------------------------------
      {"name", [](RouterConfig& r) { r.name = "R9"; }, true},
      {"asn", [](RouterConfig& r) { r.asn = 65002; }, false},
      {"networks", [](RouterConfig& r) { r.networks.push_back(pfx("11.0.0.0/16")); },
       true},
      {"aggregates", [](RouterConfig& r) { r.aggregates.clear(); }, true},
      {"statics.prefix",
       [](RouterConfig& r) { r.statics[0].prefix = pfx("10.2.0.0/16"); }, true},
      {"statics.next_hop", [](RouterConfig& r) { r.statics[0].next_hop = "R3"; },
       true},
      {"connected", [](RouterConfig& r) { r.connected.clear(); }, true},
      {"redistribute_static",
       [](RouterConfig& r) { r.redistribute_static = false; }, true},
      {"redistribute_connected",
       [](RouterConfig& r) { r.redistribute_connected = true; }, false},
      {"policies.key",
       [](RouterConfig& r) {
         auto p = r.policies["p"];
         r.policies.erase("p");
         r.policies["q"] = p;
       },
       false},
      {"policies.extra_clause",
       [](RouterConfig& r) { r.policies["p"].push_back(PolicyClause{}); },
       false},
      // --- PolicyClause, member by member --------------------------------
      {"clause.permit", [=](RouterConfig& r) { clause(r).permit = false; },
       false},
      {"clause.node", [=](RouterConfig& r) { clause(r).node = 20; }, false},
      {"clause.match_prefixes.base",
       [=](RouterConfig& r) { clause(r).match_prefixes[0].base = pfx("21.0.0.0/8"); },
       false},
      {"clause.match_prefixes.ge",
       [=](RouterConfig& r) { clause(r).match_prefixes[0].ge = 17; }, false},
      {"clause.match_prefixes.le",
       [=](RouterConfig& r) { clause(r).match_prefixes[0].le = 25; }, false},
      {"clause.match_communities",
       [=](RouterConfig& r) {
         clause(r).match_communities = {*net::CommunityMatcher::parse("300:*")};
       },
       false},
      {"clause.match_as_path.value",
       [=](RouterConfig& r) { clause(r).match_as_path = ".*200"; }, false},
      {"clause.match_as_path.presence",
       [=](RouterConfig& r) { clause(r).match_as_path.reset(); }, false},
      {"clause.set_local_preference.value",
       [=](RouterConfig& r) { clause(r).set_local_preference = 300; }, false},
      {"clause.set_local_preference.presence",
       [=](RouterConfig& r) { clause(r).set_local_preference.reset(); }, false},
      {"clause.add_communities.high",
       [=](RouterConfig& r) { clause(r).add_communities[0].high = 301; },
       false},
      {"clause.add_communities.low",
       [=](RouterConfig& r) { clause(r).add_communities[0].low = 9; }, false},
      {"clause.delete_communities",
       [=](RouterConfig& r) { clause(r).delete_communities.clear(); }, false},
      {"clause.prepend_as",
       [=](RouterConfig& r) { clause(r).prepend_as = 65002; }, false},
      // --- PeerStmt, member by member ------------------------------------
      {"peer.peer", [](RouterConfig& r) { r.peers[0].peer = "E2"; }, false},
      {"peer.peer_as", [](RouterConfig& r) { r.peers[0].peer_as = 200; },
       false},
      {"peer.import_policy.value",
       [](RouterConfig& r) { r.peers[0].import_policy = "q"; }, false},
      {"peer.import_policy.presence",
       [](RouterConfig& r) { r.peers[0].import_policy.reset(); }, false},
      {"peer.export_policy.value",
       [](RouterConfig& r) { r.peers[0].export_policy = "q"; }, false},
      {"peer.export_policy.presence",
       [](RouterConfig& r) { r.peers[0].export_policy.reset(); }, false},
      {"peer.advertise_community",
       [](RouterConfig& r) { r.peers[0].advertise_community = true; }, false},
      {"peer.rr_client", [](RouterConfig& r) { r.peers[0].rr_client = true; },
       false},
      {"peer.advertise_default",
       [](RouterConfig& r) { r.peers[0].advertise_default = true; }, false},
      {"peers.extra", [](RouterConfig& r) { r.peers.push_back(r.peers[0]); },
       false},
  };
}

TEST(IrHash, MemberCountTripwires) {
  // Structured bindings pin each struct's member count.  A new IR field
  // fails to destructure here; when that happens, (1) decide whether
  // ast_hash and/or dataplane_hash must cover it (src/ir/hash.cpp), (2) add
  // a Mutation entry above proving it, (3) re-pin the binding.
  {
    auto [name, asn, networks, aggregates, statics, connected, red_static,
          red_connected, policies, peers] = RouterConfig{};  // 10 members
    (void)name; (void)asn; (void)networks; (void)aggregates; (void)statics;
    (void)connected; (void)red_static; (void)red_connected; (void)policies;
    (void)peers;
  }
  {
    auto [permit, node, match_prefixes, match_communities, match_as_path,
          set_local_pref, add_communities, delete_communities, prepend_as] =
        PolicyClause{};  // 9 members
    (void)permit; (void)node; (void)match_prefixes; (void)match_communities;
    (void)match_as_path; (void)set_local_pref; (void)add_communities;
    (void)delete_communities; (void)prepend_as;
  }
  {
    auto [peer, peer_as, import_policy, export_policy, advertise_community,
          rr_client, advertise_default] = PeerStmt{};  // 7 members
    (void)peer; (void)peer_as; (void)import_policy; (void)export_policy;
    (void)advertise_community; (void)rr_client; (void)advertise_default;
  }
  {
    auto [prefix, next_hop] = StaticRoute{};  // 2 members
    (void)prefix; (void)next_hop;
  }
  {
    auto [base, ge, le] = net::PrefixMatch{};  // 3 members
    (void)base; (void)ge; (void)le;
  }
  {
    auto [high, low] = net::Community{};  // 2 members
    (void)high; (void)low;
  }
  {
    auto [addr, len] = net::Ipv4Prefix{};  // 2 members
    (void)addr; (void)len;
  }
}

TEST(IrHash, EveryIrFieldFeedsAstHash) {
  const RouterConfig base = base_config();
  const std::uint64_t h0 = ast_hash(base);
  const std::uint64_t d0 = dataplane_hash(base);
  for (const auto& m : mutations()) {
    RouterConfig cfg = base_config();
    m.apply(cfg);
    ASSERT_NE(cfg, base) << m.field << ": mutation was a no-op";
    EXPECT_NE(ast_hash(cfg), h0) << m.field << " is not covered by ast_hash";
    if (m.dataplane) {
      EXPECT_NE(dataplane_hash(cfg), d0)
          << m.field << " must feed dataplane_hash (FibBuilder/"
          << "internal_prefixes read it directly)";
    } else {
      EXPECT_EQ(dataplane_hash(cfg), d0)
          << m.field << " must NOT move dataplane_hash (it reaches the "
          << "dataplane only through the symbolic RIBs)";
    }
    EXPECT_NE(snapshot_hash({cfg}), snapshot_hash({base})) << m.field;
  }
}

TEST(IrHash, PolicyHashSeesClauseOrder) {
  PolicyClause a;
  a.node = 10;
  PolicyClause b;
  b.node = 20;
  b.permit = false;
  EXPECT_NE(ast_hash(RoutePolicy{a, b}), ast_hash(RoutePolicy{b, a}));
  EXPECT_NE(ast_hash(RoutePolicy{a}), ast_hash(RoutePolicy{a, a}));
}

TEST(IrHash, SnapshotHashOrderInsensitiveButDuplicateSensitive) {
  RouterConfig r1 = base_config();
  RouterConfig r2 = base_config();
  r2.name = "R2";
  EXPECT_EQ(snapshot_hash({r1, r2}), snapshot_hash({r2, r1}));
  // The commutative combine must not self-cancel: two copies of a router
  // hash differently from zero copies (and from one).
  EXPECT_NE(snapshot_hash({r1, r1}), snapshot_hash({}));
  EXPECT_NE(snapshot_hash({r1, r1}), snapshot_hash({r1}));
}

TEST(IrHash, HashesAreDialectInvariant) {
  // The same IR emitted through either frontend and re-parsed must key
  // identically — the invariant that lets a tenant switch dialects without
  // invalidating a single artifact.
  const std::vector<RouterConfig> cfgs = {base_config()};
  const auto huawei = parse_configs(emit(cfgs, Dialect::kHuawei));
  const auto rpsl = parse_configs(emit(cfgs, Dialect::kRpsl));
  EXPECT_EQ(snapshot_hash(huawei), snapshot_hash(rpsl));
  EXPECT_EQ(dataplane_hash(huawei[0]), dataplane_hash(rpsl[0]));
  EXPECT_EQ(ast_hash(huawei[0]), ast_hash(rpsl[0]));
  // The *text* keys differ, of course: that is what the parse-stage key
  // disambiguates.
  EXPECT_NE(text_hash(emit(cfgs, Dialect::kHuawei)),
            text_hash(emit(cfgs, Dialect::kRpsl)));
}

TEST(IrHash, DiffConfigsClassifiesRouters) {
  RouterConfig r1 = base_config();
  RouterConfig r2 = base_config();
  r2.name = "R2";
  RouterConfig r3 = base_config();
  r3.name = "R3";

  RouterConfig r2_edit = r2;
  r2_edit.asn = 65099;
  const auto d = diff_configs({r1, r2}, {r2_edit, r3});
  EXPECT_EQ(d.added, std::vector<std::string>{"R3"});
  EXPECT_EQ(d.removed, std::vector<std::string>{"R1"});
  EXPECT_EQ(d.changed, std::vector<std::string>{"R2"});
  EXPECT_EQ(d.unchanged, 0u);
  EXPECT_FALSE(d.empty());
  EXPECT_FALSE(d.same_router_set());

  const auto same = diff_configs({r1, r2}, {r2, r1});
  EXPECT_TRUE(same.empty());
  EXPECT_TRUE(same.same_router_set());
  EXPECT_EQ(same.unchanged, 2u);
}

}  // namespace
}  // namespace expresso::ir
