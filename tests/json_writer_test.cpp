// support::JsonWriter / json_escape — the one escaping implementation shared
// by bench rows, the fuzz CLI, the metrics dump and the Chrome tracer.
#include "support/json_writer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "obs/trace_check.hpp"

namespace {

using expresso::obs::JsonValue;
using expresso::obs::parse_json;
using expresso::support::json_escape;
using expresso::support::JsonWriter;

// Round-trip helper: the writer's output must satisfy the strict parser.
JsonValue parse_ok(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_TRUE(parse_json(text, v, error)) << error << " in: " << text;
  return v;
}

TEST(JsonEscape, QuotesBackslashesControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape("cr\rlf"), "cr\\rlf");
  EXPECT_EQ(json_escape(std::string("nul\0byte", 8)), "nul\\u0000byte");
  EXPECT_EQ(json_escape("\x01\x1f"), "\\u0001\\u001f");
  EXPECT_EQ(json_escape("\b\f"), "\\b\\f");
  // Non-ASCII bytes pass through untouched (UTF-8 needs no escaping).
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriter, EscapedStringsRoundTripThroughStrictParser) {
  JsonWriter w;
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  w.begin_object().key(nasty).value(nasty).end_object();
  ASSERT_TRUE(w.balanced());
  const JsonValue v = parse_ok(w.str());
  ASSERT_EQ(v.kind, JsonValue::Kind::Object);
  const JsonValue* field = v.find(nasty);
  ASSERT_NE(field, nullptr);
  EXPECT_EQ(field->str, nasty);
}

TEST(JsonWriter, CommasAndNesting) {
  JsonWriter w;
  w.begin_object()
      .key("a").value(std::uint64_t{1})
      .key("b").begin_array()
      .value("x")
      .value(true)
      .begin_object().key("inner").value(2.5).end_object()
      .end_array()
      .key("c").value(false)
      .end_object();
  ASSERT_TRUE(w.balanced());
  EXPECT_EQ(w.str(),
            "{\"a\":1,\"b\":[\"x\",true,{\"inner\":2.5}],\"c\":false}");
  parse_ok(w.str());
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter w;
  w.begin_object()
      .key("obj").begin_object().end_object()
      .key("arr").begin_array().end_array()
      .end_object();
  EXPECT_EQ(w.str(), "{\"obj\":{},\"arr\":[]}");
  parse_ok(w.str());
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_object()
      .key("inf").value(std::numeric_limits<double>::infinity())
      .key("ninf").value(-std::numeric_limits<double>::infinity())
      .key("nan").value(std::nan(""))
      .end_object();
  EXPECT_EQ(w.str(), "{\"inf\":null,\"ninf\":null,\"nan\":null}");
  parse_ok(w.str());
}

TEST(JsonWriter, NegativeAndLargeIntegers) {
  JsonWriter w;
  w.begin_object()
      .key("neg").value(std::int64_t{-42})
      .key("big").value(std::uint64_t{18446744073709551615ull})
      .end_object();
  EXPECT_EQ(w.str(), "{\"neg\":-42,\"big\":18446744073709551615}");
  parse_ok(w.str());
}

}  // namespace
