// The merge function ⊕ (equation 5) and preference order ρ (section 4.3).
#include "symbolic/route.hpp"

#include <gtest/gtest.h>

#include "support/util.hpp"

namespace expresso::symbolic {
namespace {

using automaton::AsAlphabet;
using automaton::AsPath;

class MergeTest : public ::testing::Test {
 protected:
  MergeTest() : enc_(4, 2) {
    alphabet_.intern(100);
    alphabet_.intern(200);
    alphabet_.freeze();
  }

  SymbolicRoute route(bdd::NodeId d, std::uint32_t lp, int asp_len,
                      net::NodeIndex nh, net::NodeIndex orig,
                      Learned learned = Learned::kEbgp) {
    SymbolicRoute r;
    r.d = d;
    r.attrs.local_pref = lp;
    AsPath p = AsPath::any(alphabet_);
    for (int i = 0; i < asp_len; ++i) p = p.prepend(0);
    r.attrs.aspath = p;
    r.attrs.comm = CommunitySet::none(enc_, CommunityRep::kAtomBdd);
    r.attrs.next_hop = nh;
    r.attrs.originator = orig;
    r.attrs.learned = learned;
    return r;
  }

  AsAlphabet alphabet_;
  Encoding enc_;
};

TEST_F(MergeTest, PreferenceOrder) {
  const auto base = route(bdd::kTrue, 100, 1, 0, 0).attrs;
  // Higher local preference wins.
  auto hi_lp = base;
  hi_lp.local_pref = 200;
  EXPECT_GT(compare_preference(hi_lp, base), 0);
  EXPECT_LT(compare_preference(base, hi_lp), 0);
  // Shorter AS path wins.
  const auto longer = route(bdd::kTrue, 100, 3, 0, 0).attrs;
  EXPECT_GT(compare_preference(base, longer), 0);
  // eBGP beats iBGP.
  auto ibgp = base;
  ibgp.learned = Learned::kIbgp;
  EXPECT_GT(compare_preference(base, ibgp), 0);
  // Administrative distance dominates everything.
  auto conn = base;
  conn.source = Source::kConnected;
  auto stat = base;
  stat.source = Source::kStatic;
  EXPECT_GT(compare_preference(conn, hi_lp), 0);
  EXPECT_GT(compare_preference(stat, hi_lp), 0);
  EXPECT_GT(compare_preference(conn, stat), 0);
  // Router-id style tiebreak is deterministic and antisymmetric.
  const auto other = route(bdd::kTrue, 100, 1, 1, 1).attrs;
  EXPECT_EQ(compare_preference(base, other), -compare_preference(other, base));
  EXPECT_NE(compare_preference(base, other), 0);
  // Exact self-tie.
  EXPECT_EQ(compare_preference(base, base), 0);
}

TEST_F(MergeTest, WinnerDisplacesLoserWhereCovered) {
  auto& m = enc_.mgr();
  // R1 (lp 200) covers n0; R2 (lp 100) covers n0 ∨ n1.
  const auto r1 = route(m.var(enc_.adv_var(0)), 200, 1, 0, 0);
  const auto r2 =
      route(m.or_(m.var(enc_.adv_var(0)), m.var(enc_.adv_var(1))), 100, 1, 1,
            1);
  const auto merged = merge_routes(enc_, {r1, r2});
  ASSERT_EQ(merged.size(), 2u);
  // The paper's example: the loser keeps only the region the winner does
  // not cover (¬n0 ∧ n1).
  for (const auto& r : merged) {
    if (r.attrs.local_pref == 200) {
      EXPECT_EQ(r.d, m.var(enc_.adv_var(0)));
    } else {
      EXPECT_EQ(r.d, m.and_(m.not_(m.var(enc_.adv_var(0))),
                            m.var(enc_.adv_var(1))));
    }
  }
}

TEST_F(MergeTest, FullyDisplacedRouteDisappears) {
  auto& m = enc_.mgr();
  const auto winner = route(bdd::kTrue, 200, 1, 0, 0);
  const auto loser = route(m.var(enc_.adv_var(2)), 100, 1, 1, 1);
  const auto merged = merge_routes(enc_, {loser, winner});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].attrs.local_pref, 200u);
  EXPECT_EQ(merged[0].d, bdd::kTrue);
}

TEST_F(MergeTest, IdenticalAttrsCoalesce) {
  auto& m = enc_.mgr();
  const auto a = route(m.var(enc_.adv_var(0)), 100, 1, 0, 0);
  const auto b = route(m.var(enc_.adv_var(1)), 100, 1, 0, 0);
  const auto merged = merge_routes(enc_, {a, b});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].d,
            m.or_(m.var(enc_.adv_var(0)), m.var(enc_.adv_var(1))));
}

TEST_F(MergeTest, VacuousRoutesDropped) {
  auto dead = route(bdd::kFalse, 100, 1, 0, 0);
  EXPECT_TRUE(merge_routes(enc_, {dead}).empty());
  auto denied = route(bdd::kTrue, 100, 1, 0, 0);
  denied.attrs.aspath =
      denied.attrs.aspath.filter(automaton::Dfa::empty(alphabet_.size()));
  EXPECT_TRUE(merge_routes(enc_, {denied}).empty());
}

// Property test: merge output is order-independent and per-point optimal.
class MergeRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MergeRandomTest, PointwiseOptimalAndOrderIndependent) {
  SplitMix64 rng(GetParam());
  AsAlphabet alphabet;
  alphabet.intern(100);
  alphabet.freeze();
  Encoding enc(3, 0);
  auto& m = enc.mgr();

  // Random candidates over the 8 environment points of 3 advertiser vars.
  std::vector<SymbolicRoute> cands;
  const int n = 2 + static_cast<int>(rng.below(4));
  for (int i = 0; i < n; ++i) {
    SymbolicRoute r;
    bdd::NodeId d = bdd::kFalse;
    for (std::uint32_t pt = 0; pt < 8; ++pt) {
      if (!rng.chance(1, 2)) continue;
      bdd::NodeId cube = bdd::kTrue;
      for (std::uint32_t v = 0; v < 3; ++v) {
        cube = m.and_(cube, (pt >> v) & 1 ? m.var(enc.adv_var(v))
                                          : m.nvar(enc.adv_var(v)));
      }
      d = m.or_(d, cube);
    }
    r.d = d;
    r.attrs.local_pref = 100 + 100 * static_cast<std::uint32_t>(rng.below(3));
    AsPath p = AsPath::any(alphabet);
    const int len = static_cast<int>(rng.below(3));
    for (int j = 0; j < len; ++j) p = p.prepend(0);
    r.attrs.aspath = p;
    r.attrs.comm = CommunitySet::none(enc, CommunityRep::kAtomBdd);
    r.attrs.next_hop = static_cast<net::NodeIndex>(rng.below(4));
    r.attrs.originator = r.attrs.next_hop;
    cands.push_back(std::move(r));
  }

  auto merged = merge_routes(enc, cands);
  auto reversed_in = cands;
  std::reverse(reversed_in.begin(), reversed_in.end());
  auto merged_rev = merge_routes(enc, reversed_in);
  EXPECT_TRUE(same_rib(merged, merged_rev));

  // Per environment point: survivors are exactly the maxima.
  for (std::uint32_t pt = 0; pt < 8; ++pt) {
    bdd::NodeId cube = bdd::kTrue;
    for (std::uint32_t v = 0; v < 3; ++v) {
      cube = m.and_(cube, (pt >> v) & 1 ? m.var(enc.adv_var(v))
                                        : m.nvar(enc.adv_var(v)));
    }
    // Best candidate attrs at this point.
    const RouteAttrs* best = nullptr;
    for (const auto& c : cands) {
      if (c.d == bdd::kFalse || m.and_(c.d, cube) == bdd::kFalse) continue;
      if (!best || compare_preference(c.attrs, *best) > 0) best = &c.attrs;
    }
    // Survivors at this point.
    int covering = 0;
    for (const auto& r : merged) {
      if (m.and_(r.d, cube) == bdd::kFalse) continue;
      ++covering;
      ASSERT_NE(best, nullptr);
      EXPECT_EQ(compare_preference(r.attrs, *best), 0)
          << "non-maximal survivor at point " << pt;
    }
    EXPECT_EQ(covering, best ? 1 : 0) << "point " << pt;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeRandomTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace expresso::symbolic
