// The observability layer (DESIGN.md §8): disabled-mode zero-emission, span
// nesting per pool thread, trace-file validity, metrics-registry exactness
// under parallel_for, and the VerifierStats-view/registry equivalence.
//
// Own binary (label "obs"): the tracer is process-global, and these tests
// flip it on and off.  Within this file, gtest runs tests in declaration
// order, so the disabled-mode tests come first.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ir/frontend.hpp"
#include "expresso/session.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "obs/trace_check.hpp"
#include "support/thread_pool.hpp"

namespace expresso {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

const char* kConfig = R"(
router A
 bgp as 100
 bgp network 10.1.0.0/16
 route-policy ex permit node 10
  set-local-preference 120
 bgp peer B AS 100
 bgp peer N1 AS 200 export ex
router B
 bgp as 100
 bgp network 10.2.0.0/16
 bgp peer A AS 100
 bgp peer N2 AS 300
)";

// --- disabled mode (must run before any test enables the tracer) -----------

TEST(ObsDisabledTest, SpansEmitNothingWhileTracingIsOff) {
  ASSERT_FALSE(obs::tracing_enabled());
  const std::size_t before = obs::Tracer::instance().events_recorded();
  {
    obs::Span span("never.recorded");
    EXPECT_FALSE(span.active());
    // args on an inactive span are no-ops (and must not allocate: active_
    // short-circuits before any rendering).
    span.arg("k", "v").arg("n", std::size_t{42}).arg("d", 1.5).arg("b", true);
  }
  EXPECT_EQ(obs::Tracer::instance().events_recorded(), before);
}

TEST(ObsDisabledTest, SessionRunRecordsNoEvents) {
  ASSERT_FALSE(obs::tracing_enabled());
  const std::size_t before = obs::Tracer::instance().events_recorded();
  Session s;
  s.load(kConfig);
  (void)s.check_loop_free();
  EXPECT_EQ(obs::Tracer::instance().events_recorded(), before);
}

// --- tracing enabled --------------------------------------------------------

TEST(ObsTraceTest, EightThreadSpansNestPerThread) {
  const std::string path = temp_path("obs_threads.json");
  obs::Tracer::instance().start(path);

  support::ThreadPool pool(8);
  // Three batches of nested spans: outer wraps two inners.  The sleep keeps
  // each iteration long enough that, even on one core, the OS schedules
  // several worker slots into the batch (the pool uses dynamic scheduling,
  // so a fast caller could otherwise drain everything from slot 0).
  for (int batch = 0; batch < 3; ++batch) {
    pool.parallel_for(32, [](std::size_t) {
      obs::Span outer("outer", "test");
      outer.arg("tid", support::thread_index());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      for (int j = 0; j < 2; ++j) {
        obs::Span inner("inner", "test");
        inner.arg("j", j);
      }
    });
  }
  obs::Tracer::instance().stop();
  ASSERT_FALSE(obs::tracing_enabled());

  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::parse_json(read_file(path), root, error)) << error;
  obs::TraceStats stats;
  ASSERT_TRUE(obs::validate_trace(root, stats, error)) << error;
  EXPECT_EQ(stats.events, 3u * 32u * 3u);  // 32 outers + 64 inners per batch
  // 8 slots participated (slot 0 = caller); each got a thread_name track.
  EXPECT_GE(stats.threads, 2u);
  EXPECT_EQ(stats.metadata, stats.threads);

  // Strict per-thread containment: every inner lies inside some outer with
  // the same tid (validate_trace already rejected partial overlaps).
  std::map<int, std::vector<std::pair<double, double>>> outers;
  for (const auto& ev : root.find("traceEvents")->items) {
    if (ev.find("ph")->str != "X" || ev.find("name")->str != "outer") continue;
    const double ts = ev.find("ts")->num;
    outers[static_cast<int>(ev.find("tid")->num)].emplace_back(
        ts, ts + ev.find("dur")->num);
  }
  for (const auto& ev : root.find("traceEvents")->items) {
    if (ev.find("ph")->str != "X" || ev.find("name")->str != "inner") continue;
    const int tid = static_cast<int>(ev.find("tid")->num);
    const double ts = ev.find("ts")->num;
    const double end = ts + ev.find("dur")->num;
    bool contained = false;
    for (const auto& [os, oe] : outers[tid]) {
      if (ts >= os && end <= oe) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << "inner span outside every outer on tid " << tid;
  }
  std::remove(path.c_str());
}

TEST(ObsTraceTest, SessionTraceHasAllStagesAndSubstrateSamples) {
  const std::string path = temp_path("obs_session.json");
  {
    Session::SessionOptions opt;
    opt.trace_path = path;
    Session s(opt);
    s.load(kConfig);
    (void)s.check_route_leak_free();
    (void)s.check_loop_free();
    s.update(kConfig);  // warm pass: parse/src hits show up as span args
    (void)s.check_loop_free();
  }
  obs::Tracer::instance().stop();

  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::parse_json(read_file(path), root, error)) << error;
  obs::TraceStats stats;
  ASSERT_TRUE(obs::validate_trace(root, stats, error)) << error;

  std::map<std::string, int> names;
  for (const auto& ev : root.find("traceEvents")->items) {
    names[ev.find("name")->str]++;
  }
  for (const char* stage :
       {"stage.parse", "stage.topology", "stage.universe", "stage.policies",
        "stage.src", "stage.spf", "stage.verdicts"}) {
    EXPECT_GE(names[stage], 1) << stage;
  }
  EXPECT_GE(names["epvp.round"], 1);
  EXPECT_GE(names["policy.compile"], 1);
  EXPECT_GE(names["spf.fib_build"], 1);
  EXPECT_GE(names["spf.pec_walk"], 1);
  EXPECT_GE(names["bdd"], 1);  // substrate counter samples
  EXPECT_GT(stats.counter_samples, 0u);
  std::remove(path.c_str());
}

// --- metrics registry -------------------------------------------------------

TEST(ObsMetricsTest, CountersExactUnderParallelFor) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("test.count");
  obs::Timer& t = reg.timer("test.timer");
  obs::Histogram& h = reg.histogram("test.hist", {1.0, 2.0, 4.0});
  support::ThreadPool pool(8);
  constexpr std::size_t kN = 100000;
  pool.parallel_for(kN, [&](std::size_t i) {
    c.inc();
    if (i % 100 == 0) t.add(0.001);
    h.observe(static_cast<double>(i % 6));
  });
  EXPECT_EQ(c.value(), kN);
  EXPECT_EQ(t.count(), kN / 100);
  EXPECT_NEAR(t.total_seconds(), 0.001 * (kN / 100), 1e-9);
  EXPECT_EQ(h.count(), kN);
  std::uint64_t bucket_sum = 0;
  for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
    bucket_sum += h.bucket_count(i);
  }
  EXPECT_EQ(bucket_sum, kN);
  // i%6 in {0,1} <=1.0; {2} <=2.0; {3,4} <=4.0; {5} overflow.
  EXPECT_EQ(h.bucket_count(3), kN / 6);
}

TEST(ObsMetricsTest, RegistryDumpsValidJson) {
  obs::Registry reg;
  reg.counter("c\"quoted\"").inc(3);
  reg.gauge("g").set(2.5);
  reg.timer("t").add(0.25);
  reg.histogram("h", {1.0}).observe(0.5);
  const std::string doc = reg.to_json_document("unit \"test\"");
  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::parse_json(doc, root, error)) << error << "\n" << doc;
  EXPECT_EQ(root.find("kind")->str, "metrics");
  EXPECT_EQ(root.find("label")->str, "unit \"test\"");
  EXPECT_EQ(root.find("counters")->find("c\"quoted\"")->num, 3);
  EXPECT_EQ(root.find("timers")->find("t")->find("count")->num, 1);
}

// Reusing one JsonValue across parses must not leak state between documents:
// parse_object emplaces into `members`, so without a reset a key the previous
// document also had would silently keep its stale value.  (This bit the
// expressod client, which parses a whole response stream into one frame
// buffer — every verdict frame after the first looked like the first.)
TEST(ObsMetricsTest, ParseJsonResetsReusedOutputValue) {
  obs::JsonValue v;
  std::string error;
  ASSERT_TRUE(obs::parse_json("{\"kind\":\"verdict\",\"extra\":1}", v, error));
  ASSERT_TRUE(obs::parse_json("{\"kind\":\"done\"}", v, error));
  ASSERT_NE(v.find("kind"), nullptr);
  EXPECT_EQ(v.find("kind")->str, "done");
  EXPECT_EQ(v.find("extra"), nullptr);  // no carry-over from the first parse
  // Kind switches cleanly too: object -> number.
  ASSERT_TRUE(obs::parse_json("42", v, error));
  EXPECT_EQ(v.kind, obs::JsonValue::Kind::Number);
  EXPECT_EQ(v.num, 42.0);
  EXPECT_TRUE(v.members.empty());
}

TEST(ObsMetricsTest, VerifierStatsViewEqualsRegistryAfterWarmAndColdRun) {
  Session s;
  s.load(kConfig);  // cold
  (void)s.check_route_leak_free();
  (void)s.check_loop_free();

  auto cfgs = ir::parse_configs(kConfig);
  cfgs[0].policies["ex"][0].set_local_preference = 130;  // universe-preserving
  s.update(std::move(cfgs));  // warm
  (void)s.check_loop_free();

  const VerifierStats& st = s.stats();
  obs::Registry& r = s.metrics();
  EXPECT_TRUE(st.converged);
  EXPECT_TRUE(st.warm);
  EXPECT_EQ(st.threads, static_cast<int>(r.gauge("session.threads").value()));
  EXPECT_EQ(st.updates,
            static_cast<int>(r.counter("session.updates").value()));
  EXPECT_EQ(st.src_seconds, r.gauge("stage.src.seconds").value());
  EXPECT_EQ(st.src_cpu_seconds, r.gauge("stage.src.cpu_seconds").value());
  EXPECT_EQ(st.spf_seconds, r.gauge("stage.spf.seconds").value());
  EXPECT_EQ(st.routing_analysis_seconds,
            r.timer("analysis.routing").total_seconds());
  EXPECT_EQ(st.forwarding_analysis_seconds,
            r.timer("analysis.forwarding").total_seconds());
  EXPECT_EQ(st.epvp_iterations,
            static_cast<int>(r.gauge("epvp.iterations").value()));
  EXPECT_EQ(st.total_pecs,
            static_cast<std::size_t>(r.gauge("pec.count").value()));
  EXPECT_EQ(st.bdd_nodes,
            static_cast<std::size_t>(r.gauge("bdd.nodes").value()));
  EXPECT_EQ(st.parse_cache.misses,
            static_cast<std::size_t>(
                r.counter("stage.parse.misses").value()));
  EXPECT_EQ(st.src_cache.misses,
            static_cast<std::size_t>(r.counter("stage.src.misses").value()));
  EXPECT_EQ(st.verdict_cache.hits,
            static_cast<std::size_t>(
                r.counter("stage.verdicts.hits").value()));
  EXPECT_EQ(st.verdict_cache.misses,
            static_cast<std::size_t>(
                r.counter("stage.verdicts.misses").value()));
  // Two runs happened: both src misses; the registry saw them all.
  EXPECT_EQ(st.src_cache.misses, 2u);
  EXPECT_EQ(st.updates, 2);
  // BDD telemetry was sampled at stage boundaries.
  EXPECT_GT(r.counter("bdd.ite_misses").value(), 0u);
  EXPECT_GT(r.gauge("process.peak_rss_bytes").value(), 0.0);
}

TEST(ObsMetricsTest, SessionAppendsMetricsDocumentOnDestruction) {
  const std::string path = temp_path("obs_metrics.jsonl");
  std::remove(path.c_str());
  {
    Session::SessionOptions opt;
    opt.metrics_path = path;
    opt.metrics_label = "obs-test";
    Session s(opt);
    s.load(kConfig);
    (void)s.check_loop_free();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::parse_json(line, root, error)) << error;
  EXPECT_EQ(root.find("label")->str, "obs-test");
  EXPECT_EQ(root.find("counters")->find("stage.src.misses")->num, 1);
  std::remove(path.c_str());
}

// Emission-side dedupe: a byte-identical repeat of the last line appended to
// the same path must be dropped (it carries no information and used to land
// duplicate rows in BENCH_expresso.json), while any change — or a different
// target path — must still be written.
TEST(ObsMetricsTest, AppendMetricsLineDropsConsecutiveDuplicates) {
  const std::string path = temp_path("obs_dedupe.jsonl");
  const std::string other = temp_path("obs_dedupe_other.jsonl");
  std::remove(path.c_str());
  std::remove(other.c_str());

  obs::append_metrics_line(path, "{\"a\":1}");
  obs::append_metrics_line(path, "{\"a\":1}");  // dropped
  obs::append_metrics_line(path, "{\"a\":2}");  // changed: kept
  obs::append_metrics_line(path, "{\"a\":1}");  // not consecutive: kept
  obs::append_metrics_line(other, "{\"a\":1}");  // different path: kept

  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "{\"a\":1}");
  EXPECT_EQ(lines[1], "{\"a\":2}");
  EXPECT_EQ(lines[2], "{\"a\":1}");
  EXPECT_EQ(read_file(other), "{\"a\":1}\n");
  std::remove(path.c_str());
  std::remove(other.c_str());
}

// --- structured logger (DESIGN.md §13) --------------------------------------

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(ObsLogTest, DisabledEventsCostNothingAndEmitNothing) {
  obs::LogSink::instance().close();
  ASSERT_FALSE(obs::log_enabled(obs::LogLevel::kError));
  const std::uint64_t before = obs::LogSink::instance().lines_written();
  {
    obs::LogEvent ev(obs::LogLevel::kError, "test.ignored");
    EXPECT_FALSE(ev.active());
    ev.field("k", "v").field("n", 7);
  }
  EXPECT_EQ(obs::LogSink::instance().lines_written(), before);
}

TEST(ObsLogTest, EveryLineIsOneJsonObjectWithTypedFields) {
  const std::string path = temp_path("obs_log.jsonl");
  std::remove(path.c_str());
  obs::LogSink::instance().open(path, obs::LogLevel::kDebug);
  {
    obs::LogEvent ev(obs::LogLevel::kInfo, "test.ev\"ent");
    ASSERT_TRUE(ev.active());
    ev.field("tenant", "edge\"7")
        .field("nodes", std::uint64_t{412000})
        .field("warm", true)
        .field("seconds", 0.25)
        .field_raw("stages", "[{\"name\":\"stage.src\"}]");
  }
  obs::LogSink::instance().close();

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::parse_json(lines[0], root, error)) << error << lines[0];
  EXPECT_GT(root.find("ts")->num, 1.0e9);  // wall-clock unix seconds
  EXPECT_EQ(root.find("level")->str, "info");
  EXPECT_EQ(root.find("event")->str, "test.ev\"ent");
  EXPECT_EQ(root.find("tenant")->str, "edge\"7");
  EXPECT_EQ(root.find("nodes")->num, 412000);
  EXPECT_TRUE(root.find("warm")->b);
  EXPECT_EQ(root.find("seconds")->num, 0.25);
  ASSERT_EQ(root.find("stages")->items.size(), 1u);
  EXPECT_EQ(root.find("stages")->items[0].find("name")->str, "stage.src");
  std::remove(path.c_str());
}

TEST(ObsLogTest, ThresholdFiltersLowerLevels) {
  const std::string path = temp_path("obs_log_level.jsonl");
  std::remove(path.c_str());
  obs::LogSink::instance().open(path, obs::LogLevel::kWarn);
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kDebug));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kInfo));
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kWarn));
  { obs::LogEvent ev(obs::LogLevel::kInfo, "test.filtered"); }
  { obs::LogEvent ev(obs::LogLevel::kError, "test.kept"); }
  obs::LogSink::instance().close();

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"event\":\"test.kept\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsLogTest, RateLimitDropsAndCountsExcessLines) {
  const std::string path = temp_path("obs_log_rate.jsonl");
  std::remove(path.c_str());
  obs::LogSink::instance().open(path, obs::LogLevel::kInfo);
  obs::LogSink::instance().set_rate_limit(5);
  const std::uint64_t dropped_before = obs::LogSink::instance().lines_dropped();
  // 20 events inside (at most) two one-second windows: at least 10 must be
  // dropped even if a window boundary lands mid-burst.
  for (int i = 0; i < 20; ++i) {
    obs::LogEvent ev(obs::LogLevel::kInfo, "test.burst");
    ev.field("i", i);
  }
  const std::uint64_t dropped =
      obs::LogSink::instance().lines_dropped() - dropped_before;
  EXPECT_GE(dropped, 10u);
  EXPECT_LE(read_lines(path).size(), 11u);  // 2 windows x 5 + dropped notice
  obs::LogSink::instance().set_rate_limit(2000);
  obs::LogSink::instance().close();
  std::remove(path.c_str());
}

// --- flight recorder --------------------------------------------------------

TEST(ObsFlightTest, RecordsInOrderAndDumpsValidJson) {
  obs::FlightRecorder fr(64);
  const std::uint32_t t1 = fr.intern("edge-1");
  EXPECT_EQ(fr.intern("edge-1"), t1);  // idempotent
  EXPECT_NE(fr.intern("edge-2"), t1);
  fr.record(obs::FlightRecorder::Event::kAdmit, t1, 7, 1);
  fr.record(obs::FlightRecorder::Event::kVerifyStart, t1, 7, 3);
  fr.record(obs::FlightRecorder::Event::kVerifyEnd, t1, 7, 0, 12);
  fr.record(obs::FlightRecorder::Event::kServerStop);

  const auto entries = fr.snapshot();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].seq, 0u);
  EXPECT_EQ(entries[0].event, obs::FlightRecorder::Event::kAdmit);
  EXPECT_EQ(entries[0].tenant, "edge-1");
  EXPECT_EQ(entries[0].request_id, 7u);
  EXPECT_EQ(entries[2].event, obs::FlightRecorder::Event::kVerifyEnd);
  EXPECT_EQ(entries[2].b, 12u);
  EXPECT_EQ(entries[3].tenant, "");  // no tenant
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GT(entries[i].seq, entries[i - 1].seq);
    EXPECT_GE(entries[i].ts_us, entries[i - 1].ts_us);
  }

  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::parse_json(fr.to_json(42), root, error)) << error;
  EXPECT_EQ(root.find("kind")->str, "flight");
  EXPECT_EQ(root.find("id")->num, 42);
  EXPECT_EQ(root.find("capacity")->num, 64);
  EXPECT_EQ(root.find("recorded")->num, 4);
  ASSERT_EQ(root.find("events")->items.size(), 4u);
  const auto& ev0 = root.find("events")->items[0];
  EXPECT_EQ(ev0.find("event")->str, "admit");
  EXPECT_EQ(ev0.find("tenant")->str, "edge-1");
}

TEST(ObsFlightTest, WraparoundKeepsNewestEntries) {
  obs::FlightRecorder fr(64);  // rounds to 64 slots
  const std::uint32_t t = fr.intern("edge-1");
  for (std::uint64_t i = 0; i < 200; ++i) {
    fr.record(obs::FlightRecorder::Event::kAdmit, t, i, i);
  }
  EXPECT_EQ(fr.recorded(), 200u);
  const auto entries = fr.snapshot();
  ASSERT_EQ(entries.size(), fr.capacity());
  // Oldest-first window ending at the last record.
  EXPECT_EQ(entries.front().seq, 200u - fr.capacity());
  EXPECT_EQ(entries.back().seq, 199u);
  EXPECT_EQ(entries.back().request_id, 199u);
}

// Eight writers lapping a small ring while a reader snapshots: the seqlock
// protocol must never yield a torn entry (a slot whose request_id does not
// match its seq), and TSan must stay quiet (every slot field is atomic).
TEST(ObsFlightTest, ConcurrentWrapUnderEightWritersIsNeverTorn) {
  obs::FlightRecorder fr(64);
  const std::uint32_t t = fr.intern("edge-1");
  constexpr int kWriters = 8;
  constexpr std::uint64_t kPerWriter = 5000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const auto& e : fr.snapshot()) {
        // Writers store request_id == a == their record's payload; a torn
        // read would pair fields from different laps.
        if (e.request_id != e.a) torn.fetch_add(1);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        const std::uint64_t payload = static_cast<std::uint64_t>(w) * kPerWriter + i;
        fr.record(obs::FlightRecorder::Event::kCoalesce, t, payload, payload);
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(fr.recorded(), kWriters * kPerWriter);
  const auto entries = fr.snapshot();
  EXPECT_EQ(entries.size(), fr.capacity());
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GT(entries[i].seq, entries[i - 1].seq);
  }
}

// --- Prometheus exposition --------------------------------------------------

TEST(ObsPrometheusTest, RendersValidExpositionWithAllMetricKinds) {
  obs::Registry reg;
  reg.counter("service.requests").inc(41);
  reg.counter("service.tenant.pending{tenant=\"edge-1\"}").inc(3);
  reg.gauge("service.active_sessions").set(2);
  reg.timer("stage.src.seconds").add(0.5);
  reg.timer("stage.src.seconds").add(1.5);
  obs::Histogram& h = reg.histogram("service.verify_ms", {1.0, 10.0, 100.0});
  for (int i = 0; i < 100; ++i) h.observe(static_cast<double>(i));

  const std::string text = reg.to_prometheus();
  std::string error;
  std::map<std::string, double> samples;
  ASSERT_TRUE(obs::validate_prometheus(text, &error, &samples))
      << error << "\n" << text;

  EXPECT_EQ(samples.at("service_requests_total"), 41);
  EXPECT_EQ(samples.at("service_tenant_pending_total{tenant=\"edge-1\"}"), 3);
  EXPECT_EQ(samples.at("service_active_sessions"), 2);
  EXPECT_EQ(samples.at("stage_src_seconds_seconds_total"), 2.0);
  EXPECT_EQ(samples.at("stage_src_seconds_total"), 2);
  // Cumulative buckets: observations 0..99 -> 2 <=1, 11 <=10, 100 finite+Inf.
  EXPECT_EQ(samples.at("service_verify_ms_bucket{le=\"1\"}"), 2);
  EXPECT_EQ(samples.at("service_verify_ms_bucket{le=\"10\"}"), 11);
  EXPECT_EQ(samples.at("service_verify_ms_bucket{le=\"+Inf\"}"), 100);
  EXPECT_EQ(samples.at("service_verify_ms_count"), 100);
  EXPECT_EQ(samples.at("service_verify_ms_sum"), 99.0 * 100.0 / 2.0);
  // Interpolated quantiles land inside the right buckets.
  const double p50 = samples.at("service_verify_ms_quantile{q=\"0.5\"}");
  EXPECT_GT(p50, 10.0);
  EXPECT_LE(p50, 100.0);
  EXPECT_GT(samples.at("service_verify_ms_quantile{q=\"0.99\"}"), p50 - 1e-9);
}

TEST(ObsPrometheusTest, ValidatorRejectsMalformedExposition) {
  std::string error;
  // Unknown TYPE.
  EXPECT_FALSE(obs::validate_prometheus(
      "# TYPE x rainbow\nx 1\n", &error));
  // Bad metric name.
  EXPECT_FALSE(obs::validate_prometheus("9x 1\n", &error));
  // Bad value.
  EXPECT_FALSE(obs::validate_prometheus("x one\n", &error));
  // Unterminated label block.
  EXPECT_FALSE(obs::validate_prometheus("x{a=\"b\" 1\n", &error));
  // No samples at all.
  EXPECT_FALSE(obs::validate_prometheus("# just a comment\n", &error));
  // And a well-formed document for contrast.
  EXPECT_TRUE(obs::validate_prometheus(
      "# TYPE x counter\nx_total{a=\"b\\\"c\"} 1 1754700000000\n", &error))
      << error;
}

TEST(ObsPrometheusTest, RemoveSeriesRetiresEvictedTenantMetrics) {
  obs::Registry reg;
  reg.gauge("service.tenant.pending{tenant=\"a\"}").set(4);
  reg.gauge("service.tenant.pending{tenant=\"b\"}").set(2);
  reg.counter("service.requests").inc();

  EXPECT_TRUE(reg.remove_series("service.tenant.pending{tenant=\"a\"}"));
  EXPECT_FALSE(reg.remove_series("service.tenant.pending{tenant=\"a\"}"));
  EXPECT_FALSE(reg.remove_series("service.never_existed"));

  const std::string text = reg.to_prometheus();
  EXPECT_EQ(text.find("tenant=\"a\""), std::string::npos);
  EXPECT_NE(text.find("tenant=\"b\""), std::string::npos);
  // The JSON dump drops the series too (eviction must not leave stale rows).
  EXPECT_EQ(reg.to_json_document("x").find("tenant=\\\"a\\\""),
            std::string::npos);
  // Re-creating the series after eviction starts fresh.
  EXPECT_EQ(reg.gauge("service.tenant.pending{tenant=\"a\"}").value(), 0.0);
}

}  // namespace
}  // namespace expresso
