// The parallel pipeline must be bit-for-bit deterministic: the EPVP rounds
// are Jacobi-synchronous (next[u] depends only on the previous round), the
// unique table hash-conses the same node set under any schedule, and every
// per-node merge runs sequentially inside its task.  So 1, 2 and 8 worker
// threads must produce identical fixed points, PEC counts and verdicts —
// NodeIds may differ across managers, which is why the comparison goes
// through canonical route strings and densities rather than raw ids.
//
// This file is also the core of the "concurrency" ctest label, which is the
// suite to run under EXPRESSO_SANITIZE=thread (see DESIGN.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "expresso/verifier.hpp"
#include "gen/datasets.hpp"

namespace expresso {
namespace {

// The paper's figure 4 network (same text as epvp_test.cpp): small, but it
// exercises communities, local-pref, route reflection and a planted leak.
const char* kFig4 = R"(
router PR1
 bgp as 300
 route-policy im1 permit node 100
  if-match prefix 128.0.0.0/2 192.0.0.0/2
  set-local-preference 200
  add-community 300:100
 route-policy ex1 deny node 100
  if-match community 300:100
 route-policy ex1 permit node 200
 bgp peer ISP1 AS 100 import im1 export ex1
 bgp peer PR2 AS 300
router PR2
 bgp as 300
 route-policy im2 permit node 100
  if-match prefix 128.0.0.0/2 192.0.0.0/2
  add-community 300:100
 route-policy ex2 deny node 100
  if-match community 300:100
 route-policy ex2 permit node 200
 bgp network 0.0.0.0/2
 bgp peer ISP2 AS 200 import im2 export ex2
 bgp peer PR1 AS 300 advertise-community
)";

// Everything observable about a finished pipeline, in a canonical,
// manager-independent form.
struct Fingerprint {
  bool converged = false;
  int iterations = 0;
  std::size_t bdd_nodes = 0;
  std::size_t pecs = 0;
  std::size_t fib_entries = 0;
  std::vector<std::string> ribs;        // sorted canonical route strings
  std::vector<std::string> violations;  // sorted describe() strings
};

Fingerprint run_pipeline(const std::string& config_text, int threads) {
  epvp::Options opt;
  opt.threads = threads;
  Verifier v(config_text, opt);
  v.run_spf();

  Fingerprint fp;
  EXPECT_EQ(v.stats().threads, threads);
  fp.converged = v.stats().converged;
  fp.iterations = v.stats().epvp_iterations;
  fp.bdd_nodes = v.stats().bdd_nodes;
  fp.pecs = v.stats().total_pecs;
  fp.fib_entries = v.stats().total_fib_entries;

  auto& eng = v.engine();
  const auto& net = v.network();
  for (net::NodeIndex u = 0; u < net.nodes().size(); ++u) {
    const auto& rib =
        net.node(u).external ? eng.external_rib(u) : eng.rib(u);
    for (const auto& r : rib) {
      fp.ribs.push_back(net.node(u).name + ": " + eng.route_to_string(r));
    }
  }
  std::sort(fp.ribs.begin(), fp.ribs.end());

  for (const auto& viol : v.check_route_leak_free()) {
    fp.violations.push_back("leak: " + v.describe(viol));
  }
  for (const auto& viol : v.check_route_hijack_free()) {
    fp.violations.push_back("hijack: " + v.describe(viol));
  }
  for (const auto& viol : v.check_loop_free()) {
    fp.violations.push_back("loop: " + v.describe(viol));
  }
  std::sort(fp.violations.begin(), fp.violations.end());
  return fp;
}

void expect_identical(const Fingerprint& a, const Fingerprint& b,
                      const std::string& what) {
  EXPECT_EQ(a.converged, b.converged) << what;
  EXPECT_EQ(a.iterations, b.iterations) << what;
  EXPECT_EQ(a.bdd_nodes, b.bdd_nodes) << what;
  EXPECT_EQ(a.pecs, b.pecs) << what;
  EXPECT_EQ(a.fib_entries, b.fib_entries) << what;
  EXPECT_EQ(a.ribs, b.ribs) << what;
  EXPECT_EQ(a.violations, b.violations) << what;
}

TEST(ParallelDeterminismTest, Fig4IdenticalAcrossThreadCounts) {
  const Fingerprint t1 = run_pipeline(kFig4, 1);
  const Fingerprint t2 = run_pipeline(kFig4, 2);
  const Fingerprint t8 = run_pipeline(kFig4, 8);
  ASSERT_TRUE(t1.converged);
  ASSERT_FALSE(t1.violations.empty());  // the planted figure-4 leak
  expect_identical(t1, t2, "fig4: 1 vs 2 threads");
  expect_identical(t1, t8, "fig4: 1 vs 8 threads");
}

TEST(ParallelDeterminismTest, SeededWanIdenticalAcrossThreadCounts) {
  gen::RegionSpec spec;
  spec.name = "det";
  spec.num_pr = 4;
  spec.num_rr = 2;
  spec.num_dr = 2;
  spec.num_peers = 6;
  spec.num_prefixes = 16;
  spec.leaks_missing_deny = 1;
  const gen::Dataset d = gen::make_region(spec, 0, 42);

  const Fingerprint t1 = run_pipeline(d.config_text, 1);
  const Fingerprint t2 = run_pipeline(d.config_text, 2);
  const Fingerprint t8 = run_pipeline(d.config_text, 8);
  ASSERT_TRUE(t1.converged);
  ASSERT_GT(t1.pecs, 0u);
  ASSERT_FALSE(t1.violations.empty());  // the planted leak
  expect_identical(t1, t2, "wan: 1 vs 2 threads");
  expect_identical(t1, t8, "wan: 1 vs 8 threads");
}

}  // namespace
}  // namespace expresso
