// Policy compilation and symbolic application (Appendix B, Algorithm 2).
//
// The key invariants come from equations (6) and (7): the clause split must
// be COMPLETE (every concrete route hits exactly one clause or the default
// deny) and NON-OVERLAPPING.  We verify them by comparing the symbolic
// application against a brute-force concrete evaluation over a small
// concrete route universe, for randomized policies.
#include "policy/transfer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ir/frontend.hpp"
#include "support/util.hpp"

namespace expresso::policy {
namespace {

using net::Ipv4Prefix;
using symbolic::CommunityRep;
using symbolic::CommunitySet;
using symbolic::SymbolicRoute;

// Fixture: an alphabet/atomizer/encoding derived from a config snippet that
// mentions all the matchers the tests use.
class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest() {
    const char* text = R"(
router R
 bgp as 65000
 route-policy all permit node 1
  if-match prefix 10.0.0.0/16 10.1.0.0/16 192.168.0.0/24
  if-match community 100:1 100:2
  if-match as-path ".*100.*"
  add-community 100:1 100:2
 bgp peer E AS 100 import all
)";
    cfgs_ = ir::parse_configs(text);
    for (std::uint32_t asn : {65000u, 100u}) alphabet_.intern(asn);
    alphabet_.freeze();
    atomizer_ = std::make_unique<symbolic::CommunityAtomizer>(cfgs_);
    enc_ = std::make_unique<symbolic::Encoding>(2, atomizer_->num_atoms());
  }

  CompiledPolicy compile(const std::string& policy_text) {
    const std::string full = "router R\n bgp as 65000\n" + policy_text +
                             " bgp peer E AS 100 import p\n";
    auto cfgs = ir::parse_configs(full);
    return compile_policy(cfgs[0].policies.at("p"), *enc_, *atomizer_,
                          alphabet_);
  }

  SymbolicRoute wildcard() {
    SymbolicRoute r;
    r.d = enc_->mgr().and_(enc_->adv(0), enc_->len_valid());
    r.attrs.aspath = automaton::AsPath::any(alphabet_);
    r.attrs.comm = CommunitySet::universal(*enc_, CommunityRep::kAtomBdd);
    return r;
  }

  std::vector<ir::RouterConfig> cfgs_;
  automaton::AsAlphabet alphabet_;
  std::unique_ptr<symbolic::CommunityAtomizer> atomizer_;
  std::unique_ptr<symbolic::Encoding> enc_;
};

TEST_F(PolicyTest, DefaultDenyDropsEverything) {
  const auto pol = compile(" route-policy p deny node 1\n");
  EXPECT_TRUE(apply_policy(pol, wildcard(), *enc_).empty());
  // An empty policy (no clauses) also denies.
  CompiledPolicy empty;
  EXPECT_TRUE(apply_policy(empty, wildcard(), *enc_).empty());
}

TEST_F(PolicyTest, PermitAllPassesUnchanged) {
  const auto pol = compile(" route-policy p permit node 1\n");
  const auto out = apply_policy(pol, wildcard(), *enc_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].d, wildcard().d);
  EXPECT_TRUE(out[0].attrs.comm == wildcard().attrs.comm);
}

TEST_F(PolicyTest, PrefixSplitIsExactPartition) {
  const auto pol = compile(
      " route-policy p deny node 1\n"
      "  if-match prefix 10.0.0.0/16\n"
      " route-policy p permit node 2\n");
  const auto out = apply_policy(pol, wildcard(), *enc_);
  ASSERT_EQ(out.size(), 1u);
  auto& m = enc_->mgr();
  // Exactly the wildcard minus the denied prefix region.
  const auto denied = enc_->prefix_exact(*Ipv4Prefix::parse("10.0.0.0/16"));
  EXPECT_EQ(out[0].d, m.diff(wildcard().d, denied));
}

TEST_F(PolicyTest, CommunityMatchSplitsRoute) {
  const auto pol = compile(
      " route-policy p permit node 1\n"
      "  if-match community 100:1\n"
      "  set-local-preference 200\n"
      " route-policy p permit node 2\n");
  const auto out = apply_policy(pol, wildcard(), *enc_);
  // Two results: tagged (lp 200) and untagged (lp default).
  ASSERT_EQ(out.size(), 2u);
  const auto a1 = atomizer_->atom_of(*net::Community::parse("100:1"));
  const SymbolicRoute* hit = nullptr;
  const SymbolicRoute* miss = nullptr;
  for (const auto& r : out) {
    if (r.attrs.local_pref == 200) hit = &r;
    if (r.attrs.local_pref == 100) miss = &r;
  }
  ASSERT_NE(hit, nullptr);
  ASSERT_NE(miss, nullptr);
  // Equation (7): the two community sets are disjoint.
  EXPECT_TRUE(hit->attrs.comm.matching_none(*enc_, {a1}).is_empty());
  EXPECT_TRUE(miss->attrs.comm.matching_any(*enc_, {a1}).is_empty());
}

TEST_F(PolicyTest, AsPathMatchSplitsRoute) {
  const auto pol = compile(
      " route-policy p deny node 1\n"
      "  if-match as-path \".*100.*\"\n"
      " route-policy p permit node 2\n");
  const auto out = apply_policy(pol, wildcard(), *enc_);
  ASSERT_EQ(out.size(), 1u);
  // Survivors never contain AS 100.
  const auto sym = alphabet_.symbol_for(100);
  EXPECT_TRUE(out[0]
                  .attrs.aspath
                  .filter(automaton::Dfa::containing(alphabet_.size(), sym))
                  .is_empty());
}

TEST_F(PolicyTest, FirstMatchOrderMatters) {
  // permit-then-deny vs deny-then-permit on the same condition.
  const auto permit_first = compile(
      " route-policy p permit node 1\n"
      "  if-match prefix 10.0.0.0/16\n"
      " route-policy p deny node 2\n");
  const auto deny_first = compile(
      " route-policy p deny node 1\n"
      "  if-match prefix 10.0.0.0/16\n"
      " route-policy p permit node 2\n");
  const auto a = apply_policy(permit_first, wildcard(), *enc_);
  const auto b = apply_policy(deny_first, wildcard(), *enc_);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  auto& m = enc_->mgr();
  // Complementary regions (within the wildcard universe).
  EXPECT_EQ(m.and_(a[0].d, b[0].d), bdd::kFalse);
  EXPECT_EQ(m.or_(a[0].d, b[0].d), wildcard().d);
}

TEST_F(PolicyTest, ActionsCompose) {
  const auto pol = compile(
      " route-policy p permit node 1\n"
      "  set-local-preference 300\n"
      "  add-community 100:1\n"
      "  prepend-as 65000\n");
  const auto out = apply_policy(pol, wildcard(), *enc_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].attrs.local_pref, 300u);
  const auto a1 = atomizer_->atom_of(*net::Community::parse("100:1"));
  EXPECT_TRUE(out[0].attrs.comm.matching_none(*enc_, {a1}).is_empty());
  EXPECT_EQ(out[0].attrs.aspath.min_length(), 1);
  EXPECT_EQ(out[0].attrs.aspath.witness()[0], alphabet_.symbol_for(65000));
}

// Equation (6)/(7) as a property test: for random policies, the symbolic
// split neither loses nor duplicates any (prefix, community, as-path)
// point, verified against concrete first-match evaluation.
class PolicyPartitionTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolicyPartitionTest, SymbolicAgreesWithConcreteFirstMatch) {
  SplitMix64 rng(GetParam());
  const std::vector<std::string> pool = {"10.0.0.0/16", "10.1.0.0/16",
                                         "192.168.0.0/24"};
  const std::vector<std::string> comms = {"100:1", "100:2"};

  // Random policy: 1-3 clauses + maybe final permit.
  std::ostringstream pol;
  int node = 1;
  const int nclauses = 1 + static_cast<int>(rng.below(3));
  for (int c = 0; c < nclauses; ++c) {
    pol << " route-policy p " << (rng.chance(1, 3) ? "deny" : "permit")
        << " node " << node++ << "\n";
    if (rng.chance(1, 2)) {
      pol << "  if-match prefix " << pool[rng.below(pool.size())] << "\n";
    }
    if (rng.chance(1, 2)) {
      pol << "  if-match community " << comms[rng.below(comms.size())]
          << "\n";
    }
    if (rng.chance(1, 2)) {
      pol << "  set-local-preference "
          << (rng.chance(1, 2) ? "200" : "300") << "\n";
    }
    if (rng.chance(1, 2)) {
      pol << "  add-community " << comms[rng.below(comms.size())] << "\n";
    }
  }
  if (rng.chance(2, 3)) pol << " route-policy p permit node 99\n";

  const std::string full = "router R\n bgp as 65000\n" + pol.str() +
                           " bgp peer E AS 100 import p\n";
  auto cfgs = ir::parse_configs(full);
  const auto& ast = cfgs[0].policies.at("p");

  automaton::AsAlphabet alphabet;
  alphabet.intern(65000);
  alphabet.intern(100);
  alphabet.freeze();
  symbolic::CommunityAtomizer atomizer(cfgs);
  symbolic::Encoding enc(1, atomizer.num_atoms());
  const auto compiled = compile_policy(ast, enc, atomizer, alphabet);

  SymbolicRoute in;
  in.d = enc.mgr().and_(enc.adv(0), enc.len_valid());
  in.attrs.aspath = automaton::AsPath::any(alphabet);
  in.attrs.comm =
      CommunitySet::universal(enc, symbolic::CommunityRep::kAtomBdd);
  const auto out = apply_policy(compiled, in, enc);

  // Concrete check over prefix x atom-subset points.
  const std::uint32_t k = enc.num_atoms();
  for (const auto& ptext : pool) {
    const auto p = *Ipv4Prefix::parse(ptext);
    for (std::uint32_t mask = 0; mask < (1u << k); ++mask) {
      // Concrete first-match evaluation.
      std::set<net::Community> cset;
      for (std::uint32_t i = 0; i < k; ++i) {
        if ((mask >> i) & 1) cset.insert(atomizer.sample(i));
      }
      std::optional<std::uint32_t> expect_lp;
      std::optional<std::uint32_t> expect_added;  // atom forced present
      bool permitted = false;
      for (const auto& clause : ast) {
        bool match = true;
        if (!clause.match_prefixes.empty()) {
          bool any = false;
          for (const auto& pm : clause.match_prefixes) {
            any = any || pm.matches(p);
          }
          match = any;
        }
        if (match && !clause.match_communities.empty()) {
          bool any = false;
          for (const auto& mm : clause.match_communities) {
            for (const auto& cc : cset) any = any || mm.matches(cc);
          }
          match = any;
        }
        if (!match) continue;
        permitted = clause.permit;
        if (clause.permit) {
          expect_lp = clause.set_local_preference.value_or(100);
          if (!clause.add_communities.empty()) {
            expect_added = atomizer.atom_of(clause.add_communities[0]);
          }
        }
        break;
      }

      // Symbolic side: find the unique output covering this point.
      auto& m = enc.mgr();
      bdd::NodeId comm_point = bdd::kTrue;
      for (std::uint32_t i = 0; i < k; ++i) {
        comm_point = m.and_(comm_point, (mask >> i) & 1
                                            ? m.var(enc.atom_var(i))
                                            : m.nvar(enc.atom_var(i)));
      }
      int covered = 0;
      for (const auto& r : out) {
        const bool d_hit =
            m.and_(r.d, enc.prefix_exact(p)) != bdd::kFalse;
        // Membership of the input community list: check the PRE-action set
        // via inverse reasoning — apply the expected actions to the mask
        // and test containment in the output comm set.
        std::uint32_t out_mask = mask;
        if (permitted && expect_added) out_mask |= 1u << *expect_added;
        bdd::NodeId out_point = bdd::kTrue;
        for (std::uint32_t i = 0; i < k; ++i) {
          out_point = m.and_(out_point, (out_mask >> i) & 1
                                            ? m.var(enc.atom_var(i))
                                            : m.nvar(enc.atom_var(i)));
        }
        const bool comm_hit =
            m.and_(r.attrs.comm.as_bdd(), out_point) != bdd::kFalse;
        if (d_hit && comm_hit &&
            (!expect_lp || r.attrs.local_pref == *expect_lp)) {
          ++covered;
        }
      }
      if (permitted) {
        EXPECT_GE(covered, 1)
            << "lost point prefix=" << ptext << " mask=" << mask << "\n"
            << full;
      } else {
        // Completeness of deny: the denied (prefix, community) point must
        // not survive with unchanged attributes.  Skip when some permit
        // clause adds communities — a *different* input point may then
        // legitimately map onto this community value.
        bool adds_exist = false;
        for (const auto& clause : ast) {
          adds_exist = adds_exist ||
                       (clause.permit && !clause.add_communities.empty());
        }
        if (!adds_exist) {
          bool any = false;
          for (const auto& r : out) {
            any = any ||
                  (m.and_(r.d, enc.prefix_exact(p)) != bdd::kFalse &&
                   m.and_(r.attrs.comm.as_bdd(), comm_point) != bdd::kFalse);
          }
          EXPECT_FALSE(any) << "resurrected point prefix=" << ptext
                            << " mask=" << mask << "\n" << full;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyPartitionTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace expresso::policy
