// Property analyzers on targeted networks: forwarding loops, blackholes,
// egress preference, BlockToExternal, and witness rendering.
#include "properties/analyzer.hpp"

#include <gtest/gtest.h>

#include "expresso/verifier.hpp"

namespace expresso::properties {
namespace {

using net::Ipv4Prefix;

TEST(LoopTest, StaticRouteLoopIsDetected) {
  // A and B point statics for the same prefix at each other.
  const char* cfg = R"(
router A
 bgp as 100
 static 10.9.0.0/16 next-hop B
 bgp peer B AS 100
router B
 bgp as 100
 static 10.9.0.0/16 next-hop A
 bgp peer A AS 100
)";
  Verifier v(cfg);
  const auto loops = v.check_loop_free();
  ASSERT_FALSE(loops.empty());
  for (const auto& viol : loops) {
    // The loop path revisits its first router.
    ASSERT_GE(viol.path.size(), 3u);
    EXPECT_EQ(viol.path.front(), viol.path.back());
  }
  // Only packets destined to the looping prefix loop.
  auto& enc = v.engine().encoding();
  const auto in_prefix = enc.addr_in(*Ipv4Prefix::parse("10.9.0.0/16"));
  for (const auto& viol : loops) {
    EXPECT_EQ(enc.mgr().diff(viol.condition, in_prefix), bdd::kFalse);
  }
}

TEST(LoopTest, ConsistentStaticsDoNotLoop) {
  const char* cfg = R"(
router A
 bgp as 100
 static 10.9.0.0/16 next-hop B
 bgp peer B AS 100
router B
 bgp as 100
 interface prefix 10.9.0.0/16
 bgp peer A AS 100
)";
  Verifier v(cfg);
  EXPECT_TRUE(v.check_loop_free().empty());
  EXPECT_TRUE(
      v.check_blackhole_free({*Ipv4Prefix::parse("10.9.0.0/16")}).empty());
}

TEST(BlockToExternalTest, StrippedSessionHidesTheCommunity) {
  // Same policy bug on two sessions; only the advertise-community one leaks
  // the BTE tag on the wire.
  const char* cfg = R"(
router R
 bgp as 11537
 route-policy im permit node 10
  add-community 11537:888
 route-policy ex permit node 10
 bgp peer P1 AS 100 import im export ex advertise-community
 bgp peer P2 AS 200 import im export ex
)";
  Verifier v(cfg);
  const auto viols =
      v.check_block_to_external(*net::Community::parse("11537:888"));
  ASSERT_FALSE(viols.empty());
  const auto p1 = *v.network().find("P1");
  for (const auto& viol : viols) {
    EXPECT_EQ(viol.node, p1);  // never P2: its session strips communities
  }
}

TEST(BlockToExternalTest, UnknownCommunityMeansNoViolations) {
  const char* cfg = R"(
router R
 bgp as 1
 bgp peer P AS 2
)";
  Verifier v(cfg);
  // 99:99 appears nowhere in the configs; the atomizer maps it to the
  // "other" atom, which external wildcards may carry — but no policy adds
  // it, and external wildcards ARE allowed to carry arbitrary communities,
  // so the property over it is meaningless rather than violated.  We only
  // require the call not to crash and to return a well-formed answer.
  const auto viols =
      v.check_block_to_external(*net::Community::parse("99:99"));
  for (const auto& viol : viols) {
    EXPECT_TRUE(v.network().node(viol.node).external);
  }
}

TEST(EgressPreferenceTest, TieMakesBothExitsPossible) {
  const char* cfg = R"(
router BR
 bgp as 100
 bgp peer E1 AS 200
 bgp peer E2 AS 300
)";
  Verifier v(cfg);
  const auto dest = *Ipv4Prefix::parse("198.18.0.0/15");
  // No import policies: E1 wins ties via router-id, so preferring E1 holds…
  EXPECT_TRUE(v.check_egress_preference("BR", dest, {"E1", "E2"}).empty());
  // …and preferring E2 is violated (E1-exit and E2-exit conditions overlap
  // only if some environment exits via E1 while E2 advertises — with the
  // deterministic tiebreak, exits are disjoint, so this also holds).
  EXPECT_TRUE(v.check_egress_preference("BR", dest, {"E2", "E1"}).empty());
  // Unknown node names yield no violations rather than crashing.
  EXPECT_TRUE(v.check_egress_preference("NOPE", dest, {"E1"}).empty());
}

TEST(DescribeTest, RendersReadableWitness) {
  const char* cfg = R"(
router R
 bgp as 100
 bgp network 172.16.0.0/16
 route-policy im permit node 10
  set-local-preference 200
 bgp peer EVIL AS 666 import im
)";
  Verifier v(cfg);
  // EVIL can hijack the internal prefix: nothing filters it inbound and
  // the import policy hands external routes a higher local preference.
  const auto viols = v.check_route_hijack_free();
  ASSERT_FALSE(viols.empty());
  const std::string text = v.describe(viols.front());
  EXPECT_NE(text.find("RouteHijackFree"), std::string::npos);
  EXPECT_NE(text.find("EVIL"), std::string::npos);
  EXPECT_NE(text.find("witness"), std::string::npos);
  EXPECT_NE(text.find("advertises the prefix"), std::string::npos);
}

TEST(VerifierTest, StagesAreIdempotentAndTimed) {
  const char* cfg = R"(
router R
 bgp as 100
 bgp network 172.16.0.0/16
 bgp peer P AS 200
)";
  Verifier v(cfg);
  v.run_src();
  const auto t1 = v.stats().src_seconds;
  v.run_src();  // no re-run
  EXPECT_EQ(v.stats().src_seconds, t1);
  v.run_spf();
  const auto pecs1 = v.pecs().size();
  v.run_spf();
  EXPECT_EQ(v.pecs().size(), pecs1);
  EXPECT_GT(v.stats().total_rib_routes, 0u);
  EXPECT_TRUE(v.stats().converged);
}

}  // namespace
}  // namespace expresso::properties
