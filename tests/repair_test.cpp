// Diagnosis & repair tests (label "repair", DESIGN.md §14).
//
//  * RepairCampaign: >= 50 planted scenarios (EXPRESSO_REPAIR_SCENARIOS
//    tunable) over every plant::BugClass — the localizer must rank the
//    truly-edited term in its top 3 and the screening loop must find a
//    clean repair whose warm re-verdict is byte-identical to a cold verify
//    of the repaired config (ISSUE 10 acceptance criteria).
//  * RepairGenClasses: plant -> diagnose -> repair -> re-verify round trip
//    over every organic src/gen bug class, including the Internet2 BTE
//    convention (needs the network-wide candidate bundle).
//  * CliParse: regressions for the checked CLI numeric parsing shared by
//    expresso_fuzz / expressod_load / expressod / expresso_repair.
#include <gtest/gtest.h>

#include <cstdlib>

#include "expresso/session.hpp"
#include "gen/datasets.hpp"
#include "ir/frontend.hpp"
#include "repair/plant.hpp"
#include "repair/repair.hpp"
#include "support/util.hpp"

namespace expresso {
namespace {

std::size_t battery_violations(Session& s, const repair::RepairSpec& spec) {
  std::size_t n = 0;
  if (spec.leak) n += s.check_route_leak_free().size();
  if (spec.hijack) n += s.check_route_hijack_free().size();
  if (spec.loops) n += s.check_loop_free().size();
  if (spec.traffic) n += s.check_traffic_hijack_free().size();
  if (!spec.blackhole.empty()) {
    n += s.check_blackhole_free(spec.blackhole).size();
  }
  if (spec.bte) n += s.check_block_to_external(*spec.bte).size();
  return n;
}

void expect_clean_repair(Session& session, const repair::RepairSpec& spec,
                         const char* what) {
  const repair::RepairOutcome out = repair::repair(session, spec);
  EXPECT_GT(out.baseline_violations, 0u) << what << ": plant did not manifest";
  ASSERT_TRUE(out.winner.has_value())
      << what << ": no clean candidate among " << out.candidates.size()
      << " synthesized / " << out.screened.size() << " screened";
  EXPECT_TRUE(out.clean);
  EXPECT_TRUE(out.cold_check_ran);
  EXPECT_EQ(out.warm_signature, out.cold_signature)
      << what << ": warm re-verdict diverged from the cold verify";
  EXPECT_TRUE(out.cold_check_passed);
  // The session was handed back on its original (still broken) snapshot.
  EXPECT_EQ(battery_violations(session, spec), out.baseline_violations)
      << what << ": session not restored after screening";
}

TEST(RepairCampaign, PlantedScenarios) {
  const std::size_t n = env_uint("EXPRESSO_REPAIR_SCENARIOS", 50, 100000);
  const std::uint64_t seed = env_uint("EXPRESSO_REPAIR_SEED", 0xa11ce);
  std::size_t top1 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const repair::plant::Scenario sc = repair::plant::make_scenario(seed, i);
    SCOPED_TRACE("scenario " + std::to_string(i) + ": " + sc.description);
    const repair::RepairSpec spec;

    // The un-planted region must verify clean (once per plant class per
    // variant block, to keep the campaign within its time box).
    if (i < 8) {
      Session clean;
      clean.load(sc.clean);
      EXPECT_EQ(battery_violations(clean, spec), 0u)
          << "clean scenario config is not clean";
    }

    Session session;
    session.load(sc.broken);
    const repair::RepairOutcome out = repair::repair(session, spec);
    EXPECT_GT(out.baseline_violations, 0u) << "plant did not manifest";
    ASSERT_FALSE(out.diagnoses.empty());

    // The truly-edited term ranks in the top 3 of some violation's
    // localization (each scenario plants exactly one edit).
    bool localized = false;
    bool first = false;
    for (const auto& d : out.diagnoses) {
      localized = localized || repair::plant::truth_in_top(d.terms, sc.truth, 3);
      first = first || repair::plant::truth_in_top(d.terms, sc.truth, 1);
    }
    EXPECT_TRUE(localized) << "planted term not in any top-3 localization";
    if (first) ++top1;

    ASSERT_TRUE(out.winner.has_value())
        << "no clean repair among " << out.candidates.size()
        << " candidates (screened " << out.screened.size() << ")";
    EXPECT_TRUE(out.clean);
    EXPECT_TRUE(out.cold_check_ran);
    EXPECT_EQ(out.warm_signature, out.cold_signature);
    EXPECT_TRUE(out.cold_check_passed);
  }
  // Not asserted (the contract is top-3), but worth seeing in the log.
  std::printf("repair campaign: %zu scenarios, top-1 localization %zu\n", n,
              top1);
}

TEST(RepairCampaign, DiagnoseEntryPoint) {
  const repair::plant::Scenario sc =
      repair::plant::make_scenario(0xa11ce, 0);
  Session session;
  session.load(sc.broken);
  const auto diagnoses = session.diagnose();
  ASSERT_FALSE(diagnoses.empty());
  for (const auto& d : diagnoses) {
    EXPECT_FALSE(d.property.empty());
    EXPECT_FALSE(d.node.empty());
    EXPECT_FALSE(d.terms.empty());
    for (std::size_t i = 1; i < d.terms.size(); ++i) {
      EXPECT_LE(d.terms[i].score, d.terms[i - 1].score)
          << "terms not sorted by score";
    }
  }
}

gen::RegionSpec small_region() {
  gen::RegionSpec spec;
  spec.name = "repair";
  spec.num_pr = 3;
  spec.num_rr = 1;
  spec.num_dr = 1;
  spec.num_peers = 4;
  spec.num_prefixes = 6;
  return spec;
}

TEST(RepairGenClasses, MissingDeny) {
  gen::RegionSpec spec = small_region();
  spec.leaks_missing_deny = 1;
  Session session;
  session.load(gen::make_region(spec, 0, 7).config_text);
  expect_clean_repair(session, {}, "leaks_missing_deny");
}

TEST(RepairGenClasses, MissingAdvertiseCommunity) {
  gen::RegionSpec spec = small_region();
  spec.leaks_missing_adv_comm = 1;
  Session session;
  session.load(gen::make_region(spec, 0, 7).config_text);
  expect_clean_repair(session, {}, "leaks_missing_adv_comm");
}

TEST(RepairGenClasses, UnfilteredInterface) {
  gen::RegionSpec spec = small_region();
  spec.hijacks_unfiltered_iface = 1;
  Session session;
  session.load(gen::make_region(spec, 0, 7).config_text);
  expect_clean_repair(session, {}, "hijacks_unfiltered_iface");
}

TEST(RepairGenClasses, TrafficHijackDefault) {
  gen::RegionSpec spec = small_region();
  spec.traffic_hijack_default = 1;
  Session session;
  session.load(gen::make_region(spec, 0, 7).config_text);
  expect_clean_repair(session, {}, "traffic_hijack_default");
}

TEST(RepairGenClasses, Internet2BlockToExternal) {
  // 4 reachable BTE violations from distinct export policies: no single
  // targeted edit cleans the battery — the screening loop must fall through
  // to the network-wide candidate bundle.
  Session session;
  session.load(gen::make_internet2(7, 20, 40).config_text);
  // The Bagpipe battery: a transit backbone re-exports peers by design
  // (leak) and its generator plants no inbound prefix guards (hijack /
  // traffic) — BlockToExternal and loop-freedom are its contract.
  repair::RepairSpec spec;
  spec.leak = false;
  spec.hijack = false;
  spec.traffic = false;
  spec.bte = gen::internet2_bte();
  expect_clean_repair(session, spec, "internet2 BTE");
}

TEST(CliParse, ParseUintAccepts) {
  EXPECT_EQ(parse_uint("0"), 0u);
  EXPECT_EQ(parse_uint("42"), 42u);
  EXPECT_EQ(parse_uint("65535"), 65535u);
  EXPECT_EQ(parse_uint("18446744073709551615"), UINT64_MAX);
}

TEST(CliParse, ParseUintRejects) {
  EXPECT_FALSE(parse_uint("").has_value());
  EXPECT_FALSE(parse_uint("abc").has_value());
  EXPECT_FALSE(parse_uint("12abc").has_value());   // trailing garbage
  EXPECT_FALSE(parse_uint("-3").has_value());      // negative
  EXPECT_FALSE(parse_uint("+5").has_value());      // sign not accepted
  EXPECT_FALSE(parse_uint(" 12").has_value());     // leading whitespace
  EXPECT_FALSE(parse_uint("12 ").has_value());
  EXPECT_FALSE(parse_uint("0x10").has_value());    // no hex
  EXPECT_FALSE(parse_uint("99999999999999999999").has_value());  // overflow
}

TEST(CliParseDeathTest, CliUintExitsTwo) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_EXIT(cli_uint("tool", "--runs", "abc"),
              testing::ExitedWithCode(2), "tool: bad value for --runs: 'abc'");
  EXPECT_EXIT(cli_uint("tool", "--connect-port", "70000", 65535),
              testing::ExitedWithCode(2),
              "bad value for --connect-port: '70000' \\(maximum 65535\\)");
  EXPECT_EQ(cli_uint("tool", "--runs", "7"), 7u);
}

}  // namespace
}  // namespace expresso
