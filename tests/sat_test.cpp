#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include "support/util.hpp"

namespace expresso::sat {
namespace {

TEST(SatTest, TrivialSatAndUnsat) {
  Solver s;
  const auto a = s.new_var();
  const auto b = s.new_var();
  s.add_clause({Lit::pos(a), Lit::pos(b)});
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(a) || s.value(b));

  Solver u;
  const auto x = u.new_var();
  u.add_unit(Lit::pos(x));
  u.add_unit(Lit::neg(x));
  EXPECT_EQ(u.solve(), Result::kUnsat);
}

TEST(SatTest, UnitPropagationChain) {
  Solver s;
  std::vector<std::uint32_t> v;
  for (int i = 0; i < 10; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 10; ++i) {
    s.add_implies(Lit::pos(v[i]), Lit::pos(v[i + 1]));
  }
  s.add_unit(Lit::pos(v[0]));
  ASSERT_EQ(s.solve(), Result::kSat);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(s.value(v[i]));
}

TEST(SatTest, ImplicationCycleWithNegation) {
  Solver s;
  const auto a = s.new_var(), b = s.new_var(), c = s.new_var();
  s.add_implies(Lit::pos(a), Lit::pos(b));
  s.add_implies(Lit::pos(b), Lit::pos(c));
  s.add_implies(Lit::pos(c), Lit::neg(a));
  s.add_unit(Lit::pos(a));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatTest, TseitinGates) {
  Solver s;
  const auto a = s.new_var(), b = s.new_var();
  const auto y_and = s.new_var(), y_or = s.new_var();
  s.add_and_gate(Lit::pos(y_and), Lit::pos(a), Lit::pos(b));
  s.add_or_gate(Lit::pos(y_or), Lit::pos(a), Lit::pos(b));
  // a=1, b=0: and=0, or=1.
  ASSERT_EQ(s.solve({Lit::pos(a), Lit::neg(b)}), Result::kSat);
  EXPECT_FALSE(s.value(y_and));
  EXPECT_TRUE(s.value(y_or));
  ASSERT_EQ(s.solve({Lit::pos(a), Lit::pos(b)}), Result::kSat);
  EXPECT_TRUE(s.value(y_and));
  EXPECT_TRUE(s.value(y_or));
}

TEST(SatTest, AtMostOne) {
  Solver s;
  std::vector<Lit> lits;
  for (int i = 0; i < 5; ++i) lits.push_back(Lit::pos(s.new_var()));
  s.add_at_most_one(lits);
  s.add_clause(lits);  // at least one
  ASSERT_EQ(s.solve(), Result::kSat);
  int count = 0;
  for (const Lit l : lits) count += s.value(l.var());
  EXPECT_EQ(count, 1);
}

TEST(SatTest, AssumptionsDoNotStick) {
  Solver s;
  const auto a = s.new_var();
  EXPECT_EQ(s.solve({Lit::pos(a)}), Result::kSat);
  EXPECT_EQ(s.solve({Lit::neg(a)}), Result::kSat);
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatTest, PigeonholeUnsat) {
  // 4 pigeons, 3 holes: classic small UNSAT needing real search.
  Solver s;
  const int P = 4, H = 3;
  std::vector<std::vector<Lit>> x(P, std::vector<Lit>(H, Lit{0}));
  for (int p = 0; p < P; ++p) {
    for (int h = 0; h < H; ++h) x[p][h] = Lit::pos(s.new_var());
  }
  for (int p = 0; p < P; ++p) s.add_clause(x[p]);
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) {
        s.add_clause({~x[p1][h], ~x[p2][h]});
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.conflicts(), 0u);
}

TEST(SatTest, ConflictBudgetReturnsUnknown) {
  // 7 pigeons, 6 holes with a 5-conflict budget: cannot finish.
  Solver s;
  const int P = 7, H = 6;
  std::vector<std::vector<Lit>> x(P, std::vector<Lit>(H, Lit{0}));
  for (int p = 0; p < P; ++p) {
    for (int h = 0; h < H; ++h) x[p][h] = Lit::pos(s.new_var());
  }
  for (int p = 0; p < P; ++p) s.add_clause(x[p]);
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) {
        s.add_clause({~x[p1][h], ~x[p2][h]});
      }
    }
  }
  EXPECT_EQ(s.solve({}, 5), Result::kUnknown);
}

// Random 3-SAT instances cross-checked against brute force.
class SatRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SatRandomTest, AgreesWithBruteForce) {
  SplitMix64 rng(GetParam());
  const int nvars = 8;
  const int nclauses = 28;

  std::vector<std::vector<int>> cnf;  // +v / -v, 1-based
  for (int c = 0; c < nclauses; ++c) {
    std::vector<int> clause;
    for (int l = 0; l < 3; ++l) {
      const int v = 1 + static_cast<int>(rng.below(nvars));
      clause.push_back(rng.chance(1, 2) ? v : -v);
    }
    cnf.push_back(clause);
  }

  bool brute_sat = false;
  for (std::uint32_t a = 0; a < (1u << nvars) && !brute_sat; ++a) {
    bool all = true;
    for (const auto& clause : cnf) {
      bool any = false;
      for (const int lit : clause) {
        const bool val = (a >> (std::abs(lit) - 1)) & 1;
        any = any || (lit > 0 ? val : !val);
      }
      all = all && any;
    }
    brute_sat = all;
  }

  Solver s;
  for (int v = 0; v < nvars; ++v) s.new_var();
  for (const auto& clause : cnf) {
    std::vector<Lit> lits;
    for (const int lit : clause) {
      lits.push_back(lit > 0 ? Lit::pos(lit - 1) : Lit::neg(-lit - 1));
    }
    s.add_clause(lits);
  }
  const Result r = s.solve();
  EXPECT_EQ(r, brute_sat ? Result::kSat : Result::kUnsat);
  if (r == Result::kSat) {
    // The model must satisfy every clause.
    for (const auto& clause : cnf) {
      bool any = false;
      for (const int lit : clause) {
        const bool val = s.value(std::abs(lit) - 1);
        any = any || (lit > 0 ? val : !val);
      }
      EXPECT_TRUE(any);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandomTest,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace expresso::sat
