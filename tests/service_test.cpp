// End-to-end tests for the expressod verification service (label "service").
//
// Three layers:
//
//   * ServiceE2E — a loopback server, a fuzz-generated base snapshot and a
//     50-edit chain pushed through the client library; every streamed
//     verdict frame must be byte-identical to what an in-process Session
//     replaying the same chain renders through the same canonical
//     serializer (service::verdict_frames).  Structural BDD equality across
//     managers is exactly string equality of the canonical frames.
//   * ServiceProtocol — adversarial wire input (truncated frames, oversized
//     length prefixes, malformed JSON, mid-request disconnects).  The
//     contract: an error response or a clean teardown, never a crash, and
//     the server keeps serving well-formed clients afterwards.  This suite
//     is re-run under ASan by scripts/check.sh.
//   * ServiceFairness / ServiceEviction / ServiceCoalescing /
//     ServiceBackpressure — multi-tenant scheduling: bounded queue wait
//     under a one-worker spam load, coldest idle eviction at the session
//     ceiling with correct cold re-admission, burst coalescing collapsing a
//     rapid edit storm into one verify (with each coalesced request keeping
//     its own blackhole checks), and the per-tenant pending bound answering
//     floods with {"error":"overloaded"} instead of queuing unboundedly.
//   * ServiceLifecycle — daemon hygiene: per-connection resources reaped as
//     clients disconnect, and stop()/start() restartability.
//
// The E2E chain length is tunable via EXPRESSO_SERVICE_E2E_EDITS
// (default 50).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ir/ir.hpp"
#include "ir/frontend.hpp"
#include "expresso/session.hpp"
#include "fuzz/edits.hpp"
#include "fuzz/generator.hpp"
#include "net/prefix.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "obs/trace_check.hpp"
#include "repair/plant.hpp"
#include "repair/repair.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "support/json_writer.hpp"
#include "support/util.hpp"

namespace expresso::service {
namespace {

// --- raw-socket helpers for the protocol-robustness suite -------------------

int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  return fd;
}

void send_bytes(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    ASSERT_GT(w, 0) << std::strerror(errno);
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

// A frame whose length prefix lies about the payload.
void send_header_only(int fd, std::uint32_t claimed_len) {
  unsigned char hdr[4] = {
      static_cast<unsigned char>(claimed_len >> 24),
      static_cast<unsigned char>(claimed_len >> 16),
      static_cast<unsigned char>(claimed_len >> 8),
      static_cast<unsigned char>(claimed_len)};
  send_bytes(fd, hdr, sizeof(hdr));
}

// Reads one frame and returns its parsed JSON; fails the test on damage.
obs::JsonValue recv_json(int fd) {
  std::string payload;
  EXPECT_EQ(read_frame(fd, payload), FrameStatus::kOk);
  obs::JsonValue doc;
  std::string error;
  EXPECT_TRUE(obs::parse_json(payload, doc, error)) << error << ": " << payload;
  return doc;
}

std::string str_field(const obs::JsonValue& doc, const char* key) {
  const obs::JsonValue* v = doc.find(key);
  return (v != nullptr && v->kind == obs::JsonValue::Kind::String) ? v->str
                                                                   : "";
}

// The server must still serve well-formed clients: the invariant every
// robustness test ends on.
void expect_still_serving(std::uint16_t port) {
  Client probe;
  probe.connect("127.0.0.1", port);
  EXPECT_TRUE(probe.hello());
}

// --- shared fuzz-scenario plumbing ------------------------------------------

struct TenantChain {
  std::string base_text;
  std::vector<std::string> edit_texts;  // serialized snapshots after each edit
  std::vector<std::string> blackhole_strings;
  std::vector<net::Ipv4Prefix> blackhole;
};

TenantChain make_chain(std::uint64_t seed, int edits) {
  TenantChain chain;
  const auto sc = fuzz::generate_scenario(seed);
  chain.base_text = sc.config_text;
  for (const auto& p : sc.pool) {
    chain.blackhole.push_back(p);
    chain.blackhole_strings.push_back(p.to_string());
  }
  auto snapshot = ir::parse_configs(sc.config_text);
  for (int e = 0; e < edits; ++e) {
    const auto edit = fuzz::apply_random_edit(
        snapshot, seed * 31 + static_cast<std::uint64_t>(e) * 7 + 13);
    snapshot = edit.configs;
    chain.edit_texts.push_back(ir::emit(snapshot, ir::Dialect::kHuawei));
  }
  return chain;
}

// The in-process replica mirrors the SessionOptions the server gives its
// tenant sessions (server.cpp verify_batch), minus the metrics label.
Session make_replica(int threads = 1) {
  Session::SessionOptions so;
  so.engine.threads = threads;
  so.bdd_gc = true;
  return Session(so);
}

// --- end-to-end bit-identity -------------------------------------------------

TEST(ServiceE2E, EditChainVerdictsBitIdenticalToInProcessSession) {
  const int edits = static_cast<int>(
      env_uint("EXPRESSO_SERVICE_E2E_EDITS", 50, 10000));
  const TenantChain chain = make_chain(0xe2e5eed, edits);

  ServerOptions so;
  so.workers = 2;
  Server server(so);
  const std::uint16_t port = server.start();

  Client client;
  client.connect("127.0.0.1", port);
  Session replica = make_replica();

  std::uint64_t id = 1;
  std::size_t warm_runs = 0;
  auto push_and_compare = [&](const std::string& text) {
    const auto result =
        client.update("t-e2e", text, chain.blackhole_strings, id);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_TRUE(result.converged);
    if (result.warm) ++warm_runs;

    replica.update(text);
    replica.run_src();
    const auto expected =
        verdict_frames(replica, "t-e2e", id, chain.blackhole);
    ASSERT_EQ(result.verdict_payloads.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result.verdict_payloads[i], expected[i])
          << "push " << id << ", frame " << i;
    }
    ++id;
  };

  push_and_compare(chain.base_text);
  for (const auto& text : chain.edit_texts) push_and_compare(text);

  // The chain overwhelmingly re-verified warm (an edit may legitimately
  // force a cold reload, e.g. when it perturbs the topology).
  EXPECT_GE(warm_runs, chain.edit_texts.size() / 2);
  server.stop();
}

// --- {"op":"repair"} ---------------------------------------------------------

TEST(ServiceRepair, StreamedRepairMatchesInProcessLoop) {
  // A planted scenario pushed through the wire verb must stream the same
  // screening sequence the in-process loop runs, and land on the same
  // winner with the warm-vs-cold cross-check intact.
  const repair::plant::Scenario sc = repair::plant::make_scenario(0xd0c, 0);
  const std::string broken_text = ir::emit(sc.broken, ir::Dialect::kHuawei);

  Server server;
  const std::uint16_t port = server.start();
  Client client;
  client.connect("127.0.0.1", port);

  RepairOptions opts;
  opts.profile = true;
  opts.trace_id = "repair-e2e";
  const auto result = client.repair("t-repair", broken_text, 1, opts);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.baseline_violations, 0u);
  EXPECT_TRUE(result.clean);
  EXPECT_FALSE(result.winner.empty());
  EXPECT_TRUE(result.cold_check_ran);
  EXPECT_TRUE(result.cold_check_passed);
  EXPECT_EQ(result.trace_id, "repair-e2e");
  EXPECT_EQ(result.screened, result.candidates.size());
  ASSERT_FALSE(result.candidates.empty());
  // The stream ends on the winning (clean) candidate; nothing before wins.
  EXPECT_TRUE(result.candidates.back().clean);
  EXPECT_EQ(result.candidates.back().description, result.winner);
  for (std::size_t i = 0; i + 1 < result.candidates.size(); ++i) {
    EXPECT_FALSE(result.candidates[i].clean);
  }
  // The repair stages surface in the profiled breakdown.
  bool saw_screen = false;
  for (const auto& s : result.profile) {
    saw_screen = saw_screen || s.name == "repair.screen";
  }
  EXPECT_TRUE(saw_screen) << "no repair.screen span in the done profile";

  // In-process replica of the same loop for the frame-by-frame comparison.
  Session replica = make_replica();
  replica.load(sc.broken);
  const repair::RepairOutcome expected = repair::repair(replica, {});
  ASSERT_EQ(result.candidates.size(), expected.screened.size());
  for (std::size_t i = 0; i < expected.screened.size(); ++i) {
    EXPECT_EQ(result.candidates[i].edit,
              repair::to_string(expected.screened[i].candidate.kind));
    EXPECT_EQ(result.candidates[i].description,
              expected.screened[i].candidate.description);
    EXPECT_EQ(result.candidates[i].clean, expected.screened[i].clean);
    EXPECT_EQ(result.candidates[i].violations_after,
              expected.screened[i].violations_after);
  }
  ASSERT_TRUE(expected.winner.has_value());
  EXPECT_EQ(result.winner, expected.winner->description);

  // The tenant's session survives the repair on its original snapshot: a
  // follow-up update over the same connection verifies fine and renders
  // the unrepaired verdicts (the screening loop must not leak its edits).
  const auto after = client.update("t-repair", broken_text, {}, 2);
  ASSERT_TRUE(after.ok) << after.error;
  std::size_t after_violations = 0;
  for (const auto& frame : after.verdict_payloads) {
    if (frame.find("\"violations\":[{") != std::string::npos) {
      ++after_violations;
    }
  }
  EXPECT_GT(after_violations, 0u)
      << "repair screening leaked its edits into the tenant session";

  server.stop();
  EXPECT_GE(server.metrics().counter("service.repair.requests").value(), 1u);
  EXPECT_GE(server.metrics().counter("service.repair.clean").value(), 1u);
  EXPECT_EQ(server.metrics().counter("service.repair.errors").value(), 0u);
}

TEST(ServiceRepair, ValidationErrorsLeaveConnectionUsable) {
  Server server;
  const std::uint16_t port = server.start();
  const int fd = raw_connect(port);
  const auto expect_error = [&](const std::string& payload,
                                const std::string& needle) {
    ASSERT_TRUE(write_frame(fd, payload));
    const obs::JsonValue resp = recv_json(fd);
    EXPECT_EQ(str_field(resp, "kind"), "error");
    EXPECT_NE(str_field(resp, "message").find(needle), std::string::npos)
        << str_field(resp, "message");
  };
  expect_error(R"({"op":"repair","id":1})", "needs string");
  expect_error(
      R"({"op":"repair","id":2,"tenant":"t","config":"","bte":"nope"})",
      "community");
  expect_error(
      R"({"op":"repair","id":3,"tenant":"t","config":"","max_candidates":0})",
      "max_candidates");
  expect_error(
      R"({"op":"repair","id":4,"tenant":"t","config":"","leak":"yes"})",
      "boolean");
  ::close(fd);
  expect_still_serving(port);
  server.stop();
}

// --- protocol robustness ------------------------------------------------------

TEST(ServiceProtocol, TruncatedHeaderTearsDownCleanly) {
  Server server;
  const std::uint16_t port = server.start();
  const int fd = raw_connect(port);
  send_bytes(fd, "\x00\x00", 2);  // half a length prefix
  ::close(fd);
  expect_still_serving(port);
  server.stop();
  EXPECT_GE(server.metrics().counter("service.protocol_errors").value(), 1u);
}

TEST(ServiceProtocol, TruncatedPayloadTearsDownCleanly) {
  Server server;
  const std::uint16_t port = server.start();
  const int fd = raw_connect(port);
  send_header_only(fd, 100);        // promises 100 bytes...
  send_bytes(fd, "{\"op\":\"pi", 9);  // ...delivers 9, then vanishes
  ::close(fd);
  expect_still_serving(port);
  server.stop();
  EXPECT_GE(server.metrics().counter("service.protocol_errors").value(), 1u);
}

TEST(ServiceProtocol, OversizedLengthPrefixIsFatal) {
  Server server;
  const std::uint16_t port = server.start();
  const int fd = raw_connect(port);
  send_header_only(fd, 0xffffffffu);  // 4 GiB claim, never honored
  const obs::JsonValue err = recv_json(fd);
  EXPECT_EQ(str_field(err, "kind"), "error");
  const obs::JsonValue* fatal = err.find("fatal");
  ASSERT_NE(fatal, nullptr);
  EXPECT_EQ(fatal->kind, obs::JsonValue::Kind::Bool);
  EXPECT_TRUE(fatal->b);
  // The server hangs up after the fatal error frame.
  std::string payload;
  EXPECT_EQ(read_frame(fd, payload), FrameStatus::kEof);
  ::close(fd);
  expect_still_serving(port);
  server.stop();
  EXPECT_GE(server.metrics().counter("service.protocol_errors").value(), 1u);
}

TEST(ServiceProtocol, MalformedJsonGetsErrorAndConnectionSurvives) {
  Server server;
  const std::uint16_t port = server.start();
  const int fd = raw_connect(port);
  const std::string junk = "{\"op\":\"ping\"";  // unterminated object
  send_header_only(fd, static_cast<std::uint32_t>(junk.size()));
  send_bytes(fd, junk.data(), junk.size());
  obs::JsonValue err = recv_json(fd);
  EXPECT_EQ(str_field(err, "kind"), "error");
  // Non-fatal: the same connection still answers a well-formed ping.
  const std::string ping = "{\"op\":\"ping\",\"id\":7}";
  send_header_only(fd, static_cast<std::uint32_t>(ping.size()));
  send_bytes(fd, ping.data(), ping.size());
  const obs::JsonValue pong = recv_json(fd);
  EXPECT_EQ(str_field(pong, "kind"), "pong");
  ::close(fd);
  server.stop();
}

TEST(ServiceProtocol, EmptyFrameGetsErrorResponse) {
  Server server;
  const std::uint16_t port = server.start();
  const int fd = raw_connect(port);
  send_header_only(fd, 0);  // zero-length payload is not a JSON document
  const obs::JsonValue err = recv_json(fd);
  EXPECT_EQ(str_field(err, "kind"), "error");
  ::close(fd);
  server.stop();
}

TEST(ServiceProtocol, MissingAndUnknownOpsAreRejected) {
  Server server;
  const std::uint16_t port = server.start();
  Client client;
  client.connect("127.0.0.1", port);
  client.send_raw("{\"id\":3}");
  obs::JsonValue resp;
  ASSERT_TRUE(client.recv(resp));
  EXPECT_EQ(str_field(resp, "kind"), "error");
  client.send_raw("{\"op\":\"bogus\",\"id\":4}");
  ASSERT_TRUE(client.recv(resp));
  EXPECT_EQ(str_field(resp, "kind"), "error");
  const obs::JsonValue* id = resp.find("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->num, 4.0);
  // Still a working connection.
  EXPECT_TRUE(client.hello());
  server.stop();
}

TEST(ServiceProtocol, UpdateValidationErrorsLeaveConnectionUsable) {
  Server server;
  const std::uint16_t port = server.start();
  Client client;
  client.connect("127.0.0.1", port);
  obs::JsonValue resp;
  for (const char* bad : {
           // Missing tenant / config.
           "{\"op\":\"update\",\"id\":1,\"config\":\"router R0\\n\"}",
           "{\"op\":\"update\",\"id\":2,\"tenant\":\"t\"}",
           // Blackhole must be an array of prefix strings.
           "{\"op\":\"update\",\"id\":3,\"tenant\":\"t\",\"config\":\"x\","
           "\"blackhole\":\"10.0.0.0/8\"}",
           "{\"op\":\"update\",\"id\":4,\"tenant\":\"t\",\"config\":\"x\","
           "\"blackhole\":[\"not-a-prefix\"]}",
       }) {
    client.send_raw(bad);
    ASSERT_TRUE(client.recv(resp)) << bad;
    EXPECT_EQ(str_field(resp, "kind"), "error") << bad;
  }
  EXPECT_TRUE(client.hello());
  server.stop();
}

TEST(ServiceProtocol, UnparseableConfigAnswersErrorNotCrash) {
  Server server;
  const std::uint16_t port = server.start();
  Client client;
  client.connect("127.0.0.1", port);
  const auto result = client.update("t-bad", "this is not a router config", {},
                                    /*id=*/9);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
  // The tenant is not wedged: a good snapshot afterwards verifies fine.
  const TenantChain chain = make_chain(0xbadc0de, 0);
  const auto ok =
      client.update("t-bad", chain.base_text, chain.blackhole_strings, 10);
  EXPECT_TRUE(ok.ok) << ok.error;
  server.stop();
  EXPECT_GE(server.metrics().counter("service.verify_errors").value(), 1u);
}

TEST(ServiceProtocol, MidRequestDisconnectDoesNotKillServer) {
  Server server;
  const std::uint16_t port = server.start();
  const TenantChain chain = make_chain(0xd15c0, 0);

  // Disconnect while the update is (possibly) still being verified; the
  // worker's response write hits a dead socket and must be absorbed.
  {
    Client client;
    client.connect("127.0.0.1", port);
    client.send_raw(Client::update_payload("t-gone", chain.base_text,
                                           chain.blackhole_strings, 1));
    client.close();  // no read: the response stream has nowhere to go
  }
  // Disconnect mid-frame: half an update request, then gone.
  {
    const int fd = raw_connect(port);
    const std::string payload = Client::update_payload(
        "t-gone2", chain.base_text, chain.blackhole_strings, 2);
    send_header_only(fd, static_cast<std::uint32_t>(payload.size()));
    send_bytes(fd, payload.data(), payload.size() / 2);
    ::close(fd);
  }
  expect_still_serving(port);
  // A fresh client gets correct service afterwards.
  Client client;
  client.connect("127.0.0.1", port);
  const auto result =
      client.update("t-after", chain.base_text, chain.blackhole_strings, 3);
  EXPECT_TRUE(result.ok) << result.error;
  server.stop();
}

// --- connection & server lifecycle --------------------------------------------

TEST(ServiceLifecycle, ClosedConnectionsAreReapedNotAccumulated) {
  Server server;
  const std::uint16_t port = server.start();
  for (int i = 0; i < 8; ++i) {
    Client c;
    c.connect("127.0.0.1", port);
    EXPECT_TRUE(c.hello());
    c.close();
  }
  // Reader exit is asynchronous to close(): poll the open-connections gauge
  // until every per-connection record has been dropped.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.metrics().gauge("service.open_connections").value() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.metrics().gauge("service.open_connections").value(), 0.0);
  EXPECT_GE(server.metrics().counter("service.connections").value(), 8u);
  expect_still_serving(port);
  server.stop();
}

TEST(ServiceLifecycle, RestartAfterStopAdmitsWorkAgain) {
  const TenantChain chain = make_chain(0x5e57a27, 1);
  Server server;
  {
    Client c;
    c.connect("127.0.0.1", server.start());
    const auto r =
        c.update("t-restart", chain.base_text, chain.blackhole_strings, 1);
    ASSERT_TRUE(r.ok) << r.error;
  }
  server.stop();
  // A restarted Server must accept connections AND admit updates (a stale
  // shutdown latch would refuse every one with "server shutting down").
  const std::uint16_t port = server.start();
  Client c;
  c.connect("127.0.0.1", port);
  const auto r =
      c.update("t-restart", chain.edit_texts[0], chain.blackhole_strings, 2);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.warm);  // stop() destroyed all sessions: cold reload
  server.stop();
}

TEST(ServiceClient, UpdateIdsBeyondDoublePrecisionAreRejected) {
  // Ids round-trip through JSON doubles; 2^53 and up would never match the
  // echoed id again, so the client refuses to send them.
  EXPECT_THROW(
      Client::update_payload("t", "cfg", {}, std::uint64_t{1} << 53),
      std::invalid_argument);
  EXPECT_NO_THROW(
      Client::update_payload("t", "cfg", {}, (std::uint64_t{1} << 53) - 1));
}

// --- multi-tenant scheduling --------------------------------------------------

TEST(ServiceFairness, SpammingTenantCannotStarveAnother) {
  const TenantChain spam = make_chain(0xfa15, 4);
  const TenantChain quick = make_chain(0xfa16, 0);

  ServerOptions so;
  so.workers = 1;  // one worker: fairness must come from the queue policy
  Server server(so);
  const std::uint16_t port = server.start();

  // The spammer pipelines its whole burst without waiting for responses.
  Client spammer;
  spammer.connect("127.0.0.1", port);
  std::uint64_t spam_id = 1;
  spammer.send_raw(Client::update_payload("t-spam", spam.base_text,
                                          spam.blackhole_strings, spam_id));
  for (const auto& text : spam.edit_texts) {
    spammer.send_raw(
        Client::update_payload("t-spam", text, spam.blackhole_strings,
                               ++spam_id));
  }

  // The quick tenant's single push must complete — per-tenant FIFO admission
  // means it waits for at most one spam verify, not the whole burst.
  Client other;
  other.connect("127.0.0.1", port);
  const auto result =
      other.update("t-quick", quick.base_text, quick.blackhole_strings, 1);
  EXPECT_TRUE(result.ok) << result.error;

  // Drain the spammer's responses; each pipelined push gets an answer.
  for (std::uint64_t i = 1; i <= spam_id; ++i) {
    const auto r = spammer.collect(i);
    EXPECT_TRUE(r.ok) << "spam push " << i << ": " << r.error;
  }
  server.stop();

  // Every admitted request passed through the queue-wait histogram.
  const auto& hist = server.metrics().histogram("service.queue_wait");
  EXPECT_GE(hist.count(), spam_id + 1);
}

TEST(ServiceBackpressure, PendingBoundRejectsWithOverloadedFrame) {
  const TenantChain busy = make_chain(0xb0b0, 0);
  const TenantChain over = make_chain(0xb0b1, 2);

  ServerOptions so;
  so.workers = 1;
  so.coalesce_ms = 400;  // pin the lone worker on t-busy while we flood
  so.max_pending_per_tenant = 2;
  Server server(so);
  const std::uint16_t port = server.start();

  // One pipelined connection keeps admission order deterministic: the lone
  // worker picks up t-busy and lingers in its coalescing window, so the
  // t-over pushes can only pile into the pending deque.
  Client client;
  client.connect("127.0.0.1", port);
  client.send_raw(Client::update_payload("t-busy", busy.base_text, {}, 1));
  client.send_raw(Client::update_payload("t-over", over.base_text, {}, 2));
  client.send_raw(Client::update_payload("t-over", over.edit_texts[0], {}, 3));
  client.send_raw(Client::update_payload("t-over", over.edit_texts[1], {}, 4));

  // The third t-over push found the deque at the bound and was refused
  // inline by the reader, so its error frame overtakes every verdict stream.
  obs::JsonValue frame;
  ASSERT_TRUE(client.recv(frame));
  EXPECT_EQ(str_field(frame, "kind"), "error");
  EXPECT_EQ(str_field(frame, "error"), "overloaded");
  const obs::JsonValue* fid = frame.find("id");
  ASSERT_NE(fid, nullptr);
  EXPECT_EQ(fid->num, 4.0);
  const obs::JsonValue* fatal = frame.find("fatal");
  ASSERT_NE(fatal, nullptr);
  ASSERT_EQ(fatal->kind, obs::JsonValue::Kind::Bool);
  EXPECT_FALSE(fatal->b);

  // Every admitted push still answers normally.
  for (std::uint64_t id = 1; id <= 3; ++id) {
    const auto r = client.collect(id);
    EXPECT_TRUE(r.ok) << "push " << id << ": " << r.error;
  }
  server.stop();
  EXPECT_EQ(server.metrics().counter("service.rejected_overload").value(), 1u);
}

TEST(ServiceProtocol, UpdateDialectFieldValidatedAndHonored) {
  Server server{ServerOptions{}};
  const std::uint16_t port = server.start();
  const TenantChain chain = make_chain(0xd1a1, 0);
  const std::string rpsl_text =
      ir::emit(ir::parse_configs(chain.base_text), ir::Dialect::kRpsl);

  Client client;
  client.connect("127.0.0.1", port);

  // An unknown dialect name is rejected before admission and leaves the
  // connection usable.
  support::JsonWriter bad;
  bad.begin_object()
      .key("op").value("update")
      .key("id").value(std::uint64_t{1})
      .key("tenant").value("t-d")
      .key("config").value(chain.base_text)
      .key("dialect").value("klingon")
      .end_object();
  client.send_raw(bad.take());
  obs::JsonValue frame;
  ASSERT_TRUE(client.recv(frame));
  EXPECT_EQ(str_field(frame, "kind"), "error");

  // Forcing a valid dialect bypasses sniffing, and the verdicts stay
  // bit-identical to an in-process Session fed the same forced dialect.
  support::JsonWriter good;
  good.begin_object()
      .key("op").value("update")
      .key("id").value(std::uint64_t{2})
      .key("tenant").value("t-d")
      .key("config").value(rpsl_text)
      .key("dialect").value("rpsl")
      .end_object();
  client.send_raw(good.take());
  const auto r = client.collect(2);
  ASSERT_TRUE(r.ok) << r.error;

  Session replica = make_replica();
  replica.update(rpsl_text, ir::Dialect::kRpsl);
  replica.run_src();
  const auto expected = verdict_frames(replica, "t-d", 2, {});
  ASSERT_EQ(r.verdict_payloads.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(r.verdict_payloads[i], expected[i]);
  }
  server.stop();
}

TEST(ServiceEviction, ColdestSessionEvictedAndReadmittedCold) {
  ServerOptions so;
  so.max_sessions = 2;
  so.workers = 1;
  Server server(so);
  const std::uint16_t port = server.start();

  std::vector<TenantChain> chains;
  for (int t = 0; t < 3; ++t) {
    chains.push_back(make_chain(0xe71c7 + static_cast<std::uint64_t>(t), 0));
  }

  Client client;
  client.connect("127.0.0.1", port);
  for (int t = 0; t < 3; ++t) {
    const auto r = client.update("t-" + std::to_string(t),
                                 chains[static_cast<std::size_t>(t)].base_text,
                                 chains[static_cast<std::size_t>(t)]
                                     .blackhole_strings,
                                 static_cast<std::uint64_t>(t) + 1);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.warm);  // all three are cold loads
  }
  // Admitting t-2 ran past the 2-session ceiling: t-0 (coldest) was evicted.
  EXPECT_GE(server.metrics().counter("service.evictions").value(), 1u);
  EXPECT_LE(server.metrics().gauge("service.active_sessions").value(), 2.0);

  // Re-admitting the evicted tenant cold-loads and still yields verdicts
  // bit-identical to a fresh in-process Session: residency is a cache,
  // never a correctness input.
  const auto r = client.update("t-0", chains[0].base_text,
                               chains[0].blackhole_strings, 10);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.warm);

  Session replica = make_replica();
  replica.update(chains[0].base_text);
  replica.run_src();
  const auto expected = verdict_frames(replica, "t-0", 10, chains[0].blackhole);
  ASSERT_EQ(r.verdict_payloads.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(r.verdict_payloads[i], expected[i]);
  }
  server.stop();
}

TEST(ServiceEviction, WatermarkEvictsAfterVerify) {
  ServerOptions so;
  so.workers = 1;
  so.max_total_bdd_nodes = 1;  // absurdly small: every verify trips it
  Server server(so);
  const std::uint16_t port = server.start();

  Client client;
  client.connect("127.0.0.1", port);
  const TenantChain a = make_chain(0x3a7e1, 0);
  const TenantChain b = make_chain(0x3a7e2, 0);
  ASSERT_TRUE(
      client.update("t-a", a.base_text, a.blackhole_strings, 1).ok);
  ASSERT_TRUE(
      client.update("t-b", b.base_text, b.blackhole_strings, 2).ok);
  // Both verifies succeeded; the watermark pass evicted the idle sessions
  // afterwards, so correctness was never gated on residency.
  EXPECT_GE(server.metrics().counter("service.evictions").value(), 1u);
  // And the evicted tenant still answers (cold) on its next push.
  const auto r = client.update("t-a", a.base_text, a.blackhole_strings, 3);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.warm);
  server.stop();
}

TEST(ServiceCoalescing, RapidBurstCollapsesIntoOneVerify) {
  const TenantChain chain = make_chain(0xc0a1e5, 4);

  ServerOptions so;
  so.workers = 1;
  so.coalesce_ms = 100;  // linger long enough for the whole burst to land
  Server server(so);
  const std::uint16_t port = server.start();

  Client client;
  client.connect("127.0.0.1", port);
  std::uint64_t id = 0;
  client.send_raw(Client::update_payload("t-burst", chain.base_text,
                                         chain.blackhole_strings, ++id));
  for (const auto& text : chain.edit_texts) {
    client.send_raw(
        Client::update_payload("t-burst", text, chain.blackhole_strings, ++id));
  }

  // Every pipelined push is answered, and the done frames agree that the
  // burst was coalesced: the coalesced field counts the requests that were
  // drained into the same verify.
  std::uint64_t max_coalesced = 0;
  for (std::uint64_t i = 1; i <= id; ++i) {
    const auto r = client.collect(i);
    ASSERT_TRUE(r.ok) << "push " << i << ": " << r.error;
    max_coalesced = std::max(max_coalesced, r.coalesced);
  }
  EXPECT_GE(max_coalesced, 1u);
  EXPECT_GE(server.metrics().counter("service.coalesced").value(), 1u);
  // Coalescing means strictly fewer verifies than requests.
  EXPECT_LT(server.metrics().counter("service.verifies").value(), id);
  server.stop();
}

TEST(ServiceCoalescing, CoalescedRequestsKeepTheirOwnBlackholeChecks) {
  const TenantChain chain = make_chain(0xb1ac1e5, 1);

  ServerOptions so;
  so.workers = 1;
  so.coalesce_ms = 150;  // encourage both pushes to drain into one verify
  Server server(so);
  const std::uint16_t port = server.start();

  Client client;
  client.connect("127.0.0.1", port);
  // Request 1 asks for blackhole checks; request 2 (same tenant, likely the
  // same coalesced batch) does not.  Each response must reflect what *its*
  // request asked for, not whatever the latest request in the burst carried.
  client.send_raw(Client::update_payload("t-bh", chain.base_text,
                                         chain.blackhole_strings, 1));
  client.send_raw(Client::update_payload("t-bh", chain.edit_texts[0], {}, 2));
  const auto first = client.collect(1);
  const auto second = client.collect(2);
  ASSERT_TRUE(first.ok) << first.error;
  ASSERT_TRUE(second.ok) << second.error;

  const auto has_blackhole_frame = [](const std::vector<std::string>& frames) {
    for (const auto& f : frames) {
      if (f.find("\"property\":\"blackhole_free\"") != std::string::npos) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has_blackhole_frame(first.verdict_payloads));
  EXPECT_FALSE(has_blackhole_frame(second.verdict_payloads));
  server.stop();
}

// --- metrics over the wire ----------------------------------------------------

TEST(ServiceMetrics, WireDumpParsesAndCountsActivity) {
  Server server;
  const std::uint16_t port = server.start();
  const TenantChain chain = make_chain(0x3e7a1c5, 1);

  Client client;
  client.connect("127.0.0.1", port);
  ASSERT_TRUE(client
                  .update("t-m", chain.base_text, chain.blackhole_strings, 1)
                  .ok);
  ASSERT_TRUE(client
                  .update("t-m", chain.edit_texts[0], chain.blackhole_strings,
                          2)
                  .ok);

  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::parse_json(client.metrics(), doc, error)) << error;
  const obs::JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  const obs::JsonValue* verifies = counters->find("service.verifies");
  ASSERT_NE(verifies, nullptr);
  EXPECT_GE(verifies->num, 2.0);
  const obs::JsonValue* hists = doc.find("histograms");
  ASSERT_NE(hists, nullptr);
  const obs::JsonValue* qw = hists->find("service.queue_wait");
  ASSERT_NE(qw, nullptr);
  const obs::JsonValue* count = qw->find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_GE(count->num, 2.0);
  server.stop();
}

// --- observability: HTTP sidecar, correlation, flight recorder ---------------

// Minimal HTTP/1.0 GET against the diagnostics sidecar.  Returns the status
// code and fills `body` with everything after the header block.
int http_get(std::uint16_t port, const std::string& path, std::string* body) {
  const int fd = raw_connect(port);
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  send_bytes(fd, req.data(), req.size());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t header_end = response.find("\r\n\r\n");
  if (body != nullptr) {
    *body = header_end == std::string::npos
                ? std::string()
                : response.substr(header_end + 4);
  }
  int status = 0;
  (void)std::sscanf(response.c_str(), "HTTP/1.%*c %d", &status);
  return status;
}

TEST(ServiceHttp, MetricsEndpointAgreesWithWireMetricsDump) {
  ServerOptions so;
  so.http_port = 0;  // ephemeral sidecar
  Server server(so);
  const std::uint16_t port = server.start();
  ASSERT_NE(server.http_port(), 0);

  const TenantChain chain = make_chain(0x4771a5, 1);
  Client client;
  client.connect("127.0.0.1", port);
  ASSERT_TRUE(
      client.update("t-http", chain.base_text, chain.blackhole_strings, 1).ok);
  ASSERT_TRUE(client
                  .update("t-http", chain.edit_texts[0],
                          chain.blackhole_strings, 2)
                  .ok);

  // Fetch the JSON dump FIRST: the {"op":"metrics"} frame itself counts as
  // a service.request, so the exposition scraped afterwards (no further
  // frames in between) sees the identical registry state.
  std::string error;
  obs::JsonValue doc;
  ASSERT_TRUE(obs::parse_json(client.metrics(), doc, error)) << error;

  std::string body;
  ASSERT_EQ(http_get(server.http_port(), "/metrics", &body), 200);
  std::map<std::string, double> samples;
  ASSERT_TRUE(obs::validate_prometheus(body, &error, &samples))
      << error << "\n" << body;

  // The exposition and the {"op":"metrics"} JSON must be views of the same
  // registry: every unlabeled service.* counter agrees.
  const obs::JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  std::size_t compared = 0;
  for (const auto& [name, value] : counters->members) {
    if (name.rfind("service.", 0) != 0 ||
        name.find('{') != std::string::npos) {
      continue;
    }
    const std::string prom = obs::prometheus_name(name) + "_total";
    ASSERT_TRUE(samples.count(prom)) << prom << "\n" << body;
    EXPECT_EQ(samples.at(prom), value.num) << name;
    ++compared;
  }
  EXPECT_GE(compared, 3u);  // requests, verifies, ... actually flowed
  // Per-tenant series carry the tenant label.
  EXPECT_TRUE(
      samples.count("service_tenant_pending{tenant=\"t-http\"}"))
      << body;
  // The queue-wait histogram exposes interpolated quantiles.
  EXPECT_TRUE(samples.count("service_queue_wait_quantile{q=\"0.95\"}"))
      << body;

  // Unknown paths 404; query strings are stripped before dispatch.
  EXPECT_EQ(http_get(server.http_port(), "/nope", nullptr), 404);
  EXPECT_EQ(http_get(server.http_port(), "/healthz?verbose=1", nullptr), 200);
  server.stop();
}

TEST(ServiceHttp, HealthzFlipsToUnavailableOnStop) {
  ServerOptions so;
  so.http_port = 0;
  Server server(so);
  server.start();
  const std::uint16_t http_port = server.http_port();
  ASSERT_NE(http_port, 0);

  std::string body;
  ASSERT_EQ(http_get(http_port, "/healthz", &body), 200);
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::parse_json(body, doc, error)) << error << body;
  EXPECT_EQ(doc.find("status")->str, "ok");
  EXPECT_GE(doc.find("workers_live")->num, 1.0);

  // The sidecar outlives stop() so orchestrators observe the drain instead
  // of a vanished endpoint.
  server.stop();
  ASSERT_EQ(http_get(http_port, "/healthz", &body), 503);
  ASSERT_TRUE(obs::parse_json(body, doc, error)) << error << body;
  EXPECT_EQ(doc.find("status")->str, "unavailable");
}

TEST(ServiceObs, ProfiledUpdateBreakdownMatchesChromeTraceSpans) {
  const std::string trace_path =
      std::string(::testing::TempDir()) + "service_profile_trace.json";
  std::remove(trace_path.c_str());
  obs::Tracer::instance().start(trace_path);

  ServerOptions so;
  so.workers = 1;
  Server server(so);
  const std::uint16_t port = server.start();
  const TenantChain chain = make_chain(0xc0a1a7e, 0);

  Client client;
  client.connect("127.0.0.1", port);
  UpdateOptions uo;
  uo.trace_id = "corr-1";
  uo.profile = true;
  const auto r =
      client.update("t-prof", chain.base_text, chain.blackhole_strings, 7, uo);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.trace_id, "corr-1");  // done frame echoes the correlation token
  ASSERT_FALSE(r.profile.empty());
  bool saw_pipeline_stage = false;
  for (const auto& st : r.profile) {
    EXPECT_NE(st.span_id, 0u) << st.name;
    EXPECT_GE(st.ms, 0.0) << st.name;
    if (st.name.rfind("stage.", 0) == 0) saw_pipeline_stage = true;
  }
  EXPECT_TRUE(saw_pipeline_stage);

  server.stop();
  obs::Tracer::instance().stop();

  // Every span id the done frame reported must name a Chrome-trace span
  // tagged with this request's trace id: the breakdown and the trace are two
  // views of the same spans.
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::parse_json(buf.str(), root, error)) << error;
  std::set<std::uint64_t> tagged;
  for (const auto& ev : root.find("traceEvents")->items) {
    const obs::JsonValue* args = ev.find("args");
    if (args == nullptr) continue;
    const obs::JsonValue* trace = args->find("trace");
    if (trace == nullptr || trace->str != "corr-1") continue;
    EXPECT_EQ(args->find("tenant")->str, "t-prof");
    EXPECT_EQ(args->find("request_id")->num, 7);
    const obs::JsonValue* span = args->find("span_id");
    ASSERT_NE(span, nullptr);
    tagged.insert(static_cast<std::uint64_t>(span->num));
  }
  for (const auto& st : r.profile) {
    EXPECT_TRUE(tagged.count(st.span_id))
        << st.name << " span_id " << st.span_id;
  }

  // The standalone checker agrees (exercised from check.sh, which knows
  // where the build put expresso_trace_check).
  if (const char* bin = std::getenv("EXPRESSO_TRACE_CHECK_BIN")) {
    std::string cmd = std::string(bin) + " " + trace_path +
                      " --trace-id corr-1 --expect-spans ";
    for (std::size_t i = 0; i < r.profile.size(); ++i) {
      if (i > 0) cmd += ',';
      cmd += std::to_string(r.profile[i].span_id);
    }
    EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
  }
  std::remove(trace_path.c_str());
}

TEST(ServiceObs, ProfilingDoesNotPerturbVerdictBytes) {
  const TenantChain chain = make_chain(0x5a3e5eed, 2);
  // Same tenant name, same ids, two fresh servers: one replay profiled, one
  // plain.  The verdict streams must be byte-identical — profiling is a
  // read-only observer of the pipeline.
  auto replay = [&](bool profile) {
    Server server;
    const std::uint16_t port = server.start();
    Client client;
    client.connect("127.0.0.1", port);
    UpdateOptions uo;
    uo.profile = profile;
    if (profile) uo.trace_id = "bitcheck";
    std::vector<std::string> frames;
    std::uint64_t id = 1;
    auto push = [&](const std::string& text) {
      const auto r =
          client.update("t-bits", text, chain.blackhole_strings, id++, uo);
      ASSERT_TRUE(r.ok) << r.error;
      EXPECT_EQ(r.profile.empty(), !profile);
      frames.insert(frames.end(), r.verdict_payloads.begin(),
                    r.verdict_payloads.end());
    };
    push(chain.base_text);
    for (const auto& text : chain.edit_texts) push(text);
    server.stop();
    return frames;
  };
  const auto plain = replay(false);
  const auto profiled = replay(true);
  ASSERT_EQ(plain.size(), profiled.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i], profiled[i]) << "frame " << i;
  }
}

TEST(ServiceEviction, EvictionRetiresTenantMetricSeries) {
  ServerOptions so;
  so.max_sessions = 2;
  so.workers = 1;
  Server server(so);
  const std::uint16_t port = server.start();

  Client client;
  client.connect("127.0.0.1", port);
  for (int t = 0; t < 3; ++t) {
    const TenantChain chain =
        make_chain(0x90c5 + static_cast<std::uint64_t>(t), 0);
    ASSERT_TRUE(client
                    .update("t-" + std::to_string(t), chain.base_text,
                            chain.blackhole_strings,
                            static_cast<std::uint64_t>(t) + 1)
                    .ok);
  }
  ASSERT_GE(server.metrics().counter("service.evictions").value(), 1u);

  // The evicted tenant's per-tenant series must vanish from the exposition
  // (a dead tenant reported as an eternal flat line is how dashboards lie),
  // while the resident tenants keep theirs.
  const std::string text = server.metrics().to_prometheus();
  EXPECT_EQ(text.find("tenant=\"t-0\""), std::string::npos) << text;
  EXPECT_NE(text.find("tenant=\"t-2\""), std::string::npos) << text;
  server.stop();
}

TEST(ServiceFlight, WireDumpRecordsServiceLifecycle) {
  Server server;
  const std::uint16_t port = server.start();
  const TenantChain chain = make_chain(0xf119e7, 0);

  Client client;
  client.connect("127.0.0.1", port);
  ASSERT_TRUE(
      client.update("t-fl", chain.base_text, chain.blackhole_strings, 9).ok);

  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::parse_json(client.flight(), doc, error)) << error;
  EXPECT_EQ(doc.find("kind")->str, "flight");
  EXPECT_GE(doc.find("recorded")->num, 4.0);
  bool saw_start = false, saw_admit = false, saw_verify_end = false;
  std::uint64_t admit_request = 0;
  for (const auto& ev : doc.find("events")->items) {
    const std::string& name = ev.find("event")->str;
    if (name == "server_start") saw_start = true;
    if (name == "admit" && str_field(ev, "tenant") == "t-fl") {
      saw_admit = true;
      admit_request = static_cast<std::uint64_t>(ev.find("request_id")->num);
    }
    if (name == "verify_end") saw_verify_end = true;
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_admit);
  EXPECT_TRUE(saw_verify_end);
  EXPECT_EQ(admit_request, 9u);

  // Protocol damage lands in the ring too (from a throwaway connection).
  const int fd = raw_connect(port);
  send_bytes(fd, "\x00\x00\x00\x02{]", 6);
  obs::JsonValue err_frame = recv_json(fd);
  EXPECT_EQ(str_field(err_frame, "kind"), "error");
  ::close(fd);
  ASSERT_TRUE(obs::parse_json(client.flight(), doc, error)) << error;
  bool saw_protocol_error = false;
  for (const auto& ev : doc.find("events")->items) {
    if (ev.find("event")->str == "protocol_error") saw_protocol_error = true;
  }
  EXPECT_TRUE(saw_protocol_error);
  server.stop();
}

// --- canonical serialization unit checks --------------------------------------

TEST(ServiceCanonical, TerminalAndSharedNodeRendering) {
  bdd::Manager m(8);
  EXPECT_EQ(canonical_condition(m, bdd::kFalse), "F");
  EXPECT_EQ(canonical_condition(m, bdd::kTrue), "T");
  const auto x0 = m.var(0);
  EXPECT_EQ(canonical_condition(m, x0), "0:F:T");
  // x0 AND x1: root is var 0 with low=F, high=(var 1, F, T).
  const auto both = m.and_(x0, m.var(1));
  EXPECT_EQ(canonical_condition(m, both), "0:F:1;1:F:T");
  // Structural equality across managers <=> identical rendering.
  bdd::Manager other(8);
  const auto mirrored = other.and_(other.var(1), other.var(0));
  EXPECT_EQ(canonical_condition(other, mirrored),
            canonical_condition(m, both));
}

}  // namespace
}  // namespace expresso::service
