// The staged pipeline: config hashing/diffing, Session artifact memoization
// across update() calls, warm/cold selection, and const-correct read access.
#include "expresso/session.hpp"

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "ir/hash.hpp"
#include "ir/frontend.hpp"
#include "expresso/verifier.hpp"

namespace expresso {
namespace {

const char* kBase = R"(
router A
 bgp as 100
 bgp network 10.1.0.0/16
 route-policy ex permit node 10
  set-local-preference 120
 bgp peer B AS 100
 bgp peer N1 AS 200 export ex
router B
 bgp as 100
 bgp network 10.2.0.0/16
 bgp peer A AS 100
 bgp peer N2 AS 300
)";

// --- config content hashing -------------------------------------------------

TEST(ConfigHashTest, HashIsStableAcrossCopiesAndReparses) {
  const auto a = ir::parse_configs(kBase);
  const auto b = ir::parse_configs(kBase);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(ir::ast_hash(a[i]), ir::ast_hash(b[i]));
  }
  EXPECT_EQ(ir::snapshot_hash(a), ir::snapshot_hash(b));
  EXPECT_EQ(ir::text_hash(kBase), ir::text_hash(std::string(kBase)));
}

TEST(ConfigHashTest, HashSeesEveryEditedField) {
  const auto base = ir::parse_configs(kBase);
  auto edited = base;
  edited[0].policies["ex"][0].set_local_preference = 121;
  EXPECT_NE(ir::ast_hash(base[0]), ir::ast_hash(edited[0]));
  EXPECT_EQ(ir::ast_hash(base[1]), ir::ast_hash(edited[1]));
  EXPECT_NE(ir::snapshot_hash(base), ir::snapshot_hash(edited));

  auto toggled = base;
  toggled[1].peers[1].advertise_community = true;
  EXPECT_NE(ir::ast_hash(base[1]), ir::ast_hash(toggled[1]));
}

TEST(ConfigHashTest, SnapshotHashIsOrderInsensitive) {
  const auto a = ir::parse_configs(kBase);
  auto rev = a;
  std::reverse(rev.begin(), rev.end());
  EXPECT_EQ(ir::snapshot_hash(a), ir::snapshot_hash(rev));
}

TEST(ConfigHashTest, SnapshotHashDoesNotSelfCancel) {
  const auto a = ir::parse_configs(kBase);
  // With a plain XOR combine an even multiset of identical routers cancels
  // itself: two extra copies of A would hash like none.
  auto doubled = a;
  doubled.push_back(a[0]);
  doubled.push_back(a[0]);
  EXPECT_NE(ir::snapshot_hash(a), ir::snapshot_hash(doubled));
  const std::vector<ir::RouterConfig> twins{a[0], a[0]};
  EXPECT_NE(ir::snapshot_hash(twins), ir::snapshot_hash({}));
}

TEST(ConfigHashTest, DataplaneHashSeesOnlyDataPlaneFields) {
  const auto base = ir::parse_configs(kBase);

  // Pure policy edits are invisible: they can only reach the data plane
  // through the RIBs, which the Session compares directly.
  auto policy_edit = base;
  policy_edit[0].policies["ex"][0].set_local_preference = 121;
  EXPECT_EQ(ir::dataplane_hash(base), ir::dataplane_hash(policy_edit));

  auto static_edit = base;
  static_edit[0].statics.push_back(
      {*net::Ipv4Prefix::parse("10.7.0.0/16"), "B"});
  EXPECT_NE(ir::dataplane_hash(base), ir::dataplane_hash(static_edit));

  auto conn_edit = base;
  conn_edit[1].connected.push_back(*net::Ipv4Prefix::parse("10.8.0.0/24"));
  EXPECT_NE(ir::dataplane_hash(base), ir::dataplane_hash(conn_edit));

  // redistribute_static gates statics into internal_prefixes(), so the flag
  // itself is part of the data-plane key.
  auto redist = static_edit;
  redist[0].redistribute_static = true;
  EXPECT_NE(ir::dataplane_hash(static_edit),
            ir::dataplane_hash(redist));
}

TEST(ConfigDiffTest, ReportsAddedRemovedChangedUnchanged) {
  const auto before = ir::parse_configs(kBase);
  auto after = before;
  after[0].networks.push_back(*net::Ipv4Prefix::parse("10.3.0.0/16"));
  after.push_back(after[1]);
  after.back().name = "C";

  const auto d = ir::diff_configs(before, after);
  EXPECT_FALSE(d.empty());
  EXPECT_FALSE(d.same_router_set());
  EXPECT_EQ(d.added, std::vector<std::string>{"C"});
  EXPECT_TRUE(d.removed.empty());
  EXPECT_EQ(d.changed, std::vector<std::string>{"A"});
  EXPECT_EQ(d.unchanged, 1u);

  const auto same = ir::diff_configs(before, before);
  EXPECT_TRUE(same.empty());
  EXPECT_TRUE(same.same_router_set());
  EXPECT_EQ(same.unchanged, 2u);
}

// --- session memoization ----------------------------------------------------

TEST(SessionTest, MatchesTheSingleShotVerifier) {
  Session s;
  s.load(kBase);
  Verifier v(kBase);
  EXPECT_EQ(s.check_route_leak_free().size(),
            v.check_route_leak_free().size());
  EXPECT_EQ(s.check_loop_free().size(), v.check_loop_free().size());
  EXPECT_EQ(s.stats().converged, v.stats().converged);
  EXPECT_EQ(s.stats().total_pecs, v.stats().total_pecs);
}

TEST(SessionTest, IdenticalTextUpdateHitsEveryStage) {
  Session s;
  s.load(kBase);
  s.run_spf();
  const auto gen_pecs = s.pecs().size();
  (void)s.check_loop_free();

  s.update(kBase);
  const auto& st = s.stats();
  EXPECT_EQ(st.parse_cache.hits, 1u);    // byte-identical text: parser skipped
  EXPECT_EQ(st.topology_cache.hits, 1u);
  EXPECT_EQ(st.universe_cache.hits, 1u);
  EXPECT_EQ(st.src_cache.hits, 1u);

  // SRC/SPF artifacts survived: no re-run needed, verdicts replay from memo.
  const auto before_misses = s.stats().verdict_cache.misses;
  (void)s.check_loop_free();
  EXPECT_EQ(s.stats().verdict_cache.misses, before_misses);
  EXPECT_GE(s.stats().verdict_cache.hits, 1u);
  EXPECT_EQ(s.pecs().size(), gen_pecs);
}

TEST(SessionTest, UniversePreservingEditWarmStarts) {
  Session s;
  s.load(kBase);
  s.run_src();
  EXPECT_FALSE(s.stats().warm);  // first run is cold by definition

  auto edited = ir::parse_configs(kBase);
  edited[0].policies["ex"][0].set_local_preference = 300;
  s.update(edited);
  EXPECT_EQ(s.stats().universe_cache.hits, 1u);  // same alphabet/atoms
  s.run_src();
  EXPECT_TRUE(s.stats().warm);
  EXPECT_TRUE(s.stats().converged);
  EXPECT_TRUE(s.engine().warm_started());
}

TEST(SessionTest, FreshAsnForcesColdRestart) {
  Session s;
  s.load(kBase);
  s.run_src();

  auto edited = ir::parse_configs(kBase);
  edited[0].policies["ex"][0].prepend_as = 64999;  // not in the alphabet
  s.update(edited);
  EXPECT_EQ(s.stats().universe_cache.misses, 2u);  // initial load + this
  s.run_src();
  EXPECT_FALSE(s.stats().warm);
  EXPECT_FALSE(s.engine().warm_started());
  EXPECT_TRUE(s.stats().converged);
}

TEST(SessionTest, UnchangedFixedPointKeepsSpfAndVerdicts) {
  Session s;
  s.load(kBase);
  (void)s.check_loop_free();

  // An unreachable policy clause (clause 10 matches unconditionally) changes
  // the config hash but not the fixed point: SPF and verdicts stay.
  auto edited = ir::parse_configs(kBase);
  ir::PolicyClause dead;
  dead.permit = false;
  dead.node = 20;
  edited[0].policies["ex"].push_back(dead);
  s.update(edited);
  (void)s.check_loop_free();
  EXPECT_TRUE(s.stats().warm);
  EXPECT_GE(s.stats().spf_cache.hits, 1u);
  EXPECT_GE(s.stats().verdict_cache.hits, 1u);
}

TEST(SessionTest, StaticOnlyEditInvalidatesDataPlane) {
  Session s;
  s.load(kBase);
  s.run_spf();
  (void)s.check_loop_free();
  const auto spf_misses = s.stats().spf_cache.misses;
  const auto verdict_misses = s.stats().verdict_cache.misses;

  // A static route with redistribution off never enters a BGP RIB: the warm
  // run lands on the exact fixed point it was seeded with, yet the FIBs (and
  // thus PECs and forwarding verdicts) move.  The data-plane hash must force
  // the generation bump that RIB comparison alone would skip.
  auto edited = ir::parse_configs(kBase);
  edited[0].statics.push_back({*net::Ipv4Prefix::parse("10.77.0.0/16"), "B"});
  ASSERT_FALSE(edited[0].redistribute_static);
  s.update(edited);
  s.run_spf();
  EXPECT_TRUE(s.stats().warm);  // the BGP fixed point really was unchanged
  EXPECT_EQ(s.stats().spf_cache.misses, spf_misses + 1);  // PECs rebuilt
  (void)s.check_loop_free();
  EXPECT_EQ(s.stats().verdict_cache.misses, verdict_misses + 1);

  Session cold;
  cold.load(edited);
  cold.run_spf();
  EXPECT_EQ(s.pecs().size(), cold.pecs().size());
  EXPECT_EQ(s.stats().total_fib_entries, cold.stats().total_fib_entries);
}

TEST(SessionTest, ConstPecsThrowsWhileDeltaIsPending) {
  Session s;
  s.load(kBase);
  s.run_spf();
  const Session& cs = s;
  EXPECT_NO_THROW(cs.pecs());

  auto edited = ir::parse_configs(kBase);
  edited[0].policies["ex"][0].set_local_preference = 90;
  s.update(edited);
  // The delta has not been re-verified: the cached PECs describe the
  // previous snapshot and must not be handed out.
  EXPECT_THROW(cs.pecs(), std::logic_error);
  s.run_spf();
  EXPECT_NO_THROW(cs.pecs());
}

TEST(SessionTest, PolicyCacheReusesUntouchedRouters) {
  Session s;
  s.load(kBase);
  s.run_src();
  const auto misses_after_cold = s.stats().policy_cache.misses;
  EXPECT_GT(misses_after_cold, 0u);

  auto edited = ir::parse_configs(kBase);
  edited[1].networks.push_back(*net::Ipv4Prefix::parse("10.9.0.0/16"));
  s.update(edited);
  s.run_src();
  // Router B has no policies and A was untouched, so "ex" compiles 0 times.
  EXPECT_EQ(s.stats().policy_cache.misses, misses_after_cold);
  EXPECT_GE(s.stats().policy_cache.hits, 1u);
}

TEST(SessionTest, VerifyWarmShadowAgreesOnSimpleNetworks) {
  Session::SessionOptions opt;
  opt.verify_warm = true;
  Session s(opt);
  s.load(kBase);
  s.run_src();

  auto edited = ir::parse_configs(kBase);
  edited[0].policies["ex"][0].set_local_preference = 80;
  s.update(edited);
  s.run_src();
  EXPECT_TRUE(s.stats().warm);  // shadow cold run agreed with the warm one
  EXPECT_TRUE(s.stats().converged);
}

// --- timer accounting --------------------------------------------------------

TEST(SessionTest, VerdictCacheHitsLeaveAnalysisTimersUntouched) {
  Session s;
  s.load(kBase);
  (void)s.check_loop_free();
  (void)s.check_route_leak_free();
  const double fwd = s.stats().forwarding_analysis_seconds;
  const double rt = s.stats().routing_analysis_seconds;

  // Replays from the verdict memo: wall/CPU accounting must not move, so
  // repeated dashboard-style polling cannot inflate the analysis cost.
  for (int i = 0; i < 3; ++i) {
    (void)s.check_loop_free();
    (void)s.check_route_leak_free();
  }
  EXPECT_EQ(s.stats().forwarding_analysis_seconds, fwd);
  EXPECT_EQ(s.stats().routing_analysis_seconds, rt);
  EXPECT_EQ(s.stats().forwarding_analysis_cpu_seconds,
            s.metrics().timer("analysis.forwarding_cpu").total_seconds());
}

TEST(SessionTest, AnalysisTimersResetWithTheArtifactGeneration) {
  Session s;
  s.load(kBase);
  (void)s.check_loop_free();
  ASSERT_GE(s.metrics().timer("analysis.forwarding").count(), 1u);

  // The edit moves the fixed point -> new generation -> the per-generation
  // analysis timers restart from zero before the re-check lands in them.
  auto edited = ir::parse_configs(kBase);
  edited[0].policies["ex"][0].set_local_preference = 300;
  s.update(edited);
  (void)s.check_loop_free();
  EXPECT_EQ(s.metrics().timer("analysis.forwarding").count(), 1u);
  // Wall and CPU observation counts stay in lockstep.
  EXPECT_EQ(s.metrics().timer("analysis.forwarding").count(),
            s.metrics().timer("analysis.forwarding_cpu").count());
}

// --- const-correct read access ----------------------------------------------

TEST(SessionTest, ConstViewsWorkAfterStagesRan) {
  Session s;
  s.load(kBase);
  const auto loops = s.check_loop_free();
  s.run_spf();

  const Session& cs = s;
  EXPECT_EQ(cs.pecs().size(), s.stats().total_pecs);
  EXPECT_GT(cs.network().nodes().size(), 0u);
  // describe() is const (witness extraction is logically read-only), as is
  // route_to_string on the engine.
  const auto hijacks = s.check_route_hijack_free();
  for (const auto& v : hijacks) (void)cs.describe(v);
  const auto idx = *cs.network().find("A");
  for (const auto& r : cs.engine().rib(idx)) {
    EXPECT_FALSE(cs.engine().route_to_string(r).empty());
  }
}

TEST(SessionTest, ConstPecsThrowsBeforeSpf) {
  Session s;
  s.load(kBase);
  const Session& cs = s;
  EXPECT_THROW(cs.pecs(), std::logic_error);
  EXPECT_THROW(Session{}.network(), std::logic_error);
}

// --- cross-manager structural equality (the incremental differ's oracle) ----

TEST(StructurallyEqualTest, AgreesAcrossManagers) {
  bdd::Manager ma(8), mb(8);
  const auto fa = ma.and_(ma.var(3), ma.or_(ma.var(1), ma.not_(ma.var(7))));
  const auto fb = mb.and_(mb.var(3), mb.or_(mb.var(1), mb.not_(mb.var(7))));
  EXPECT_TRUE(bdd::structurally_equal(ma, fa, mb, fb));
  EXPECT_FALSE(bdd::structurally_equal(ma, fa, mb, mb.var(3)));
  EXPECT_TRUE(bdd::structurally_equal(ma, bdd::kTrue, mb, bdd::kTrue));
  EXPECT_FALSE(bdd::structurally_equal(ma, bdd::kFalse, mb, bdd::kTrue));
  // Same manager: hash-consing makes it pointer equality.
  EXPECT_TRUE(bdd::structurally_equal(ma, fa, ma, fa));
}

}  // namespace
}  // namespace expresso
