// Concrete SPVP engine unit tests (the enumeration baseline / oracle).
#include "routing/spvp.hpp"

#include <gtest/gtest.h>

#include "ir/frontend.hpp"

namespace expresso::routing {
namespace {

using net::Ipv4Prefix;

const char* kTriangle = R"(
router A
 bgp as 100
 route-policy lp200 permit node 10
  set-local-preference 200
 bgp peer ISPA AS 300 import lp200
 bgp peer B AS 100 advertise-community
 bgp peer C AS 100 advertise-community
router B
 bgp as 100
 bgp network 172.16.0.0/16
 bgp peer A AS 100 advertise-community
 bgp peer C AS 100 advertise-community
router C
 bgp as 100
 bgp peer ISPC AS 400
 bgp peer A AS 100 advertise-community
 bgp peer B AS 100 advertise-community
)";

class SpvpTest : public ::testing::Test {
 protected:
  SpvpTest() : net_(net::Network::build(ir::parse_configs(kTriangle))) {
    a_ = *net_.find("A");
    b_ = *net_.find("B");
    c_ = *net_.find("C");
    ispa_ = *net_.find("ISPA");
    ispc_ = *net_.find("ISPC");
  }

  Environment env_with(net::NodeIndex who, const std::string& prefix) {
    Environment env;
    Announcement ann;
    ann.prefix = *Ipv4Prefix::parse(prefix);
    ann.as_path = {net_.node(who).asn};
    env[who].push_back(ann);
    return env;
  }

  net::Network net_;
  net::NodeIndex a_{}, b_{}, c_{}, ispa_{}, ispc_{};
};

TEST_F(SpvpTest, EmptyEnvironmentOnlyInternalRoutes) {
  SpvpEngine spvp(net_);
  ASSERT_TRUE(spvp.run({}));
  // Everyone has exactly B's originated prefix.
  for (const auto u : {a_, b_, c_}) {
    ASSERT_EQ(spvp.rib(u).size(), 1u) << net_.node(u).name;
    EXPECT_EQ(spvp.rib(u)[0].prefix.to_string(), "172.16.0.0/16");
    EXPECT_EQ(spvp.rib(u)[0].originator, b_);
  }
  // B's route is exported to both ISPs.
  EXPECT_EQ(spvp.external_rib(ispa_).size(), 1u);
  EXPECT_EQ(spvp.external_rib(ispc_).size(), 1u);
  // The exported AS path is [100].
  EXPECT_EQ(spvp.external_rib(ispa_)[0].as_path,
            (std::vector<std::uint32_t>{100}));
}

TEST_F(SpvpTest, LocalPreferenceSelectsEgress) {
  SpvpEngine spvp(net_);
  // Both ISPs announce the same prefix; ISPA has lp 200 at import.
  Environment env = env_with(ispa_, "203.0.113.0/24");
  const auto more = env_with(ispc_, "203.0.113.0/24");
  env.insert(more.begin(), more.end());
  ASSERT_TRUE(spvp.run(env));
  for (const auto u : {a_, b_, c_}) {
    const ConcreteRoute* r = nullptr;
    for (const auto& x : spvp.rib(u)) {
      if (x.prefix.to_string() == "203.0.113.0/24") r = &x;
    }
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->originator, ispa_) << "at " << net_.node(u).name;
    EXPECT_EQ(r->local_pref, u == a_ ? 200u : 200u);
  }
}

TEST_F(SpvpTest, AsLoopPreventionDropsOwnAs) {
  SpvpEngine spvp(net_);
  Environment env;
  Announcement ann;
  ann.prefix = *Ipv4Prefix::parse("203.0.113.0/24");
  ann.as_path = {400, 100, 500};  // contains the network's own AS
  env[ispc_].push_back(ann);
  ASSERT_TRUE(spvp.run(env));
  for (const auto u : {a_, b_, c_}) {
    for (const auto& r : spvp.rib(u)) {
      EXPECT_NE(r.prefix.to_string(), "203.0.113.0/24");
    }
  }
}

TEST_F(SpvpTest, ConcreteForwardingLpm) {
  SpvpEngine spvp(net_);
  Environment env = env_with(ispc_, "172.16.1.0/24");  // more specific!
  ASSERT_TRUE(spvp.run(env));
  bool local = false;
  // At A: 172.16.1.5 matches the external /24 via C, not B's /16.
  const auto hops = spvp.forward(a_, 0xAC100105, local);
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0], c_);
  EXPECT_FALSE(local);
  // 172.16.200.1 only matches B's /16.
  const auto hops2 = spvp.forward(a_, 0xAC10C801, local);
  ASSERT_EQ(hops2.size(), 1u);
  EXPECT_EQ(hops2[0], b_);
  // At B itself the /16 is local.
  (void)spvp.forward(b_, 0xAC10C801, local);
  EXPECT_TRUE(local);
  // No route at all: empty.
  EXPECT_TRUE(spvp.forward(a_, 0x08080808, local).empty());
  EXPECT_FALSE(local);
}

TEST_F(SpvpTest, MultipleAnnouncementsSamePrefix) {
  SpvpEngine spvp(net_);
  Environment env;
  // One neighbor announces the same prefix with two AS-path lengths; the
  // shorter must win everywhere.
  Announcement short_ann, long_ann;
  short_ann.prefix = long_ann.prefix = *Ipv4Prefix::parse("203.0.113.0/24");
  short_ann.as_path = {400};
  long_ann.as_path = {400, 401, 402};
  env[ispc_] = {long_ann, short_ann};
  ASSERT_TRUE(spvp.run(env));
  for (const auto& r : spvp.rib(a_)) {
    if (r.prefix.to_string() == "203.0.113.0/24") {
      EXPECT_EQ(r.as_path.size(), 1u);
    }
  }
}

}  // namespace
}  // namespace expresso::routing
