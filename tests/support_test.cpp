// Support utilities and façade error paths.
#include <gtest/gtest.h>

#include "config/parser.hpp"
#include "expresso/verifier.hpp"
#include "net/prefix.hpp"
#include "support/util.hpp"

namespace expresso {
namespace {

TEST(SplitMixTest, DeterministicAndSeedSensitive) {
  SplitMix64 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto x = a.next();
    EXPECT_EQ(x, b.next());
  }
  bool differs = false;
  SplitMix64 a2(42);
  for (int i = 0; i < 10; ++i) differs = differs || a2.next() != c.next();
  EXPECT_TRUE(differs);
}

TEST(SplitMixTest, BoundsRespected) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    const auto v = rng.range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(MemoryMeterTest, RssReadable) {
  EXPECT_GT(current_rss_bytes(), 0u);
  EXPECT_GE(peak_rss_bytes(), current_rss_bytes() / 2);
}

TEST(PrefixTest, ParsePrintEdgeCases) {
  using net::Ipv4Prefix;
  EXPECT_EQ(Ipv4Prefix::parse("0.0.0.0/0")->to_string(), "0.0.0.0/0");
  EXPECT_EQ(Ipv4Prefix::parse("255.255.255.255/32")->to_string(),
            "255.255.255.255/32");
  // Host bits are canonicalized away.
  EXPECT_EQ(Ipv4Prefix::parse("10.1.2.3/16")->to_string(), "10.1.0.0/16");
  EXPECT_FALSE(Ipv4Prefix::parse("10.1.2.3"));
  EXPECT_FALSE(Ipv4Prefix::parse("10.1.2.3/33"));
  EXPECT_FALSE(Ipv4Prefix::parse("256.1.2.3/8"));
  EXPECT_FALSE(Ipv4Prefix::parse("10.1.2.3/8x"));

  const auto p = *Ipv4Prefix::parse("10.0.0.0/8");
  EXPECT_TRUE(p.contains(*Ipv4Prefix::parse("10.200.0.0/16")));
  EXPECT_FALSE(p.contains(*Ipv4Prefix::parse("11.0.0.0/16")));
  EXPECT_FALSE(
      Ipv4Prefix::parse("10.0.0.0/16")->contains(*Ipv4Prefix::parse("10.0.0.0/8")));
  EXPECT_TRUE(Ipv4Prefix::parse("0.0.0.0/0")->contains_addr(0xdeadbeef));
}

TEST(VerifierErrorTest, ParseErrorsPropagate) {
  EXPECT_THROW(Verifier v("garbage in garbage out"), config::ParseError);
  EXPECT_THROW(Verifier v("router R\n bgp peer"), config::ParseError);
}

TEST(VerifierErrorTest, EmptyNetworkIsHarmless) {
  Verifier v("router LONER\n bgp as 1\n bgp network 10.0.0.0/8\n");
  EXPECT_TRUE(v.check_route_leak_free().empty());
  EXPECT_TRUE(v.check_route_hijack_free().empty());
  EXPECT_TRUE(v.check_traffic_hijack_free().empty());
  EXPECT_TRUE(v.stats().converged);
}

}  // namespace
}  // namespace expresso
