// Support utilities and façade error paths.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ir/frontend.hpp"
#include "expresso/verifier.hpp"
#include "net/prefix.hpp"
#include "support/thread_pool.hpp"
#include "support/util.hpp"

namespace expresso {
namespace {

TEST(SplitMixTest, DeterministicAndSeedSensitive) {
  SplitMix64 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto x = a.next();
    EXPECT_EQ(x, b.next());
  }
  bool differs = false;
  SplitMix64 a2(42);
  for (int i = 0; i < 10; ++i) differs = differs || a2.next() != c.next();
  EXPECT_TRUE(differs);
}

TEST(SplitMixTest, BoundsRespected) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    const auto v = rng.range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(MemoryMeterTest, RssReadable) {
  EXPECT_GT(current_rss_bytes(), 0u);
  EXPECT_GE(peak_rss_bytes(), current_rss_bytes() / 2);
}

TEST(PrefixTest, ParsePrintEdgeCases) {
  using net::Ipv4Prefix;
  EXPECT_EQ(Ipv4Prefix::parse("0.0.0.0/0")->to_string(), "0.0.0.0/0");
  EXPECT_EQ(Ipv4Prefix::parse("255.255.255.255/32")->to_string(),
            "255.255.255.255/32");
  // Host bits are canonicalized away.
  EXPECT_EQ(Ipv4Prefix::parse("10.1.2.3/16")->to_string(), "10.1.0.0/16");
  EXPECT_FALSE(Ipv4Prefix::parse("10.1.2.3"));
  EXPECT_FALSE(Ipv4Prefix::parse("10.1.2.3/33"));
  EXPECT_FALSE(Ipv4Prefix::parse("256.1.2.3/8"));
  EXPECT_FALSE(Ipv4Prefix::parse("10.1.2.3/8x"));

  const auto p = *Ipv4Prefix::parse("10.0.0.0/8");
  EXPECT_TRUE(p.contains(*Ipv4Prefix::parse("10.200.0.0/16")));
  EXPECT_FALSE(p.contains(*Ipv4Prefix::parse("11.0.0.0/16")));
  EXPECT_FALSE(
      Ipv4Prefix::parse("10.0.0.0/16")->contains(*Ipv4Prefix::parse("10.0.0.0/8")));
  EXPECT_TRUE(Ipv4Prefix::parse("0.0.0.0/0")->contains_addr(0xdeadbeef));
}

TEST(VerifierErrorTest, ParseErrorsPropagate) {
  EXPECT_THROW(Verifier v("garbage in garbage out"), ir::ParseError);
  EXPECT_THROW(Verifier v("router R\n bgp peer"), ir::ParseError);
}

TEST(VerifierErrorTest, EmptyNetworkIsHarmless) {
  Verifier v("router LONER\n bgp as 1\n bgp network 10.0.0.0/8\n");
  EXPECT_TRUE(v.check_route_leak_free().empty());
  EXPECT_TRUE(v.check_route_hijack_free().empty());
  EXPECT_TRUE(v.check_traffic_hijack_free().empty());
  EXPECT_TRUE(v.stats().converged);
}

TEST(ThreadPoolTest, VisitsEveryIndexExactlyOnce) {
  support::ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ThreadIndexStaysInRange) {
  support::ThreadPool pool(4);
  std::atomic<bool> bad{false};
  pool.parallel_for(1000, [&](std::size_t) {
    const int idx = support::thread_index();
    if (idx < 0 || idx >= pool.threads()) bad.store(true);
  });
  EXPECT_FALSE(bad.load());
  EXPECT_EQ(support::thread_index(), 0);  // back outside any batch
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  support::ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    const int outer = support::thread_index();
    pool.parallel_for(4, [&](std::size_t) {
      if (support::thread_index() == outer) total.fetch_add(1);
    });
  });
  EXPECT_EQ(total.load(), 32);  // every nested iteration stayed on its slot
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller) {
  support::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   100,
                   [&](std::size_t i) {
                     if (i == 57) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> n{0};
  pool.parallel_for(10, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 10);
}

// RAII environment-variable override for the env_thread_count tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(ThreadPoolTest, EnvThreadCountParsesCleanValues) {
  {
    ScopedEnv e("EXPRESSO_THREADS", "8");
    EXPECT_EQ(support::env_thread_count(), 8);
  }
  {
    ScopedEnv e("EXPRESSO_THREADS", nullptr);
    EXPECT_EQ(support::env_thread_count(), 1);
  }
  {
    ScopedEnv e("EXPRESSO_THREADS", "0");  // 0 = hardware concurrency
    EXPECT_EQ(support::env_thread_count(), support::hardware_threads());
  }
  {
    ScopedEnv e("EXPRESSO_THREADS", "100000");  // clamped
    EXPECT_EQ(support::env_thread_count(), 256);
  }
}

// A typo like EXPRESSO_THREADS=8abc must not masquerade as 8: malformed
// values fall back to 1 thread (with a stderr warning).
TEST(ThreadPoolTest, EnvThreadCountRejectsTrailingGarbage) {
  for (const char* bad : {"8abc", "abc", "2.5", "8 ", " 8x", "0x8"}) {
    ScopedEnv e("EXPRESSO_THREADS", bad);
    EXPECT_EQ(support::env_thread_count(), 1) << "value: '" << bad << "'";
  }
}

// env_uint backs the expressod service knobs (EXPRESSO_SERVICE_PORT,
// EXPRESSO_SERVICE_MAX_SESSIONS): same hardening contract as
// env_thread_count — a typo must fall back loudly, never half-apply.
TEST(EnvUintTest, ParsesCleanValuesAndFallsBackWhenUnset) {
  {
    ScopedEnv e("EXPRESSO_SERVICE_PORT", "7448");
    EXPECT_EQ(expresso::env_uint("EXPRESSO_SERVICE_PORT", 7447, 65535), 7448u);
  }
  {
    ScopedEnv e("EXPRESSO_SERVICE_PORT", nullptr);
    EXPECT_EQ(expresso::env_uint("EXPRESSO_SERVICE_PORT", 7447, 65535), 7447u);
  }
  {
    ScopedEnv e("EXPRESSO_SERVICE_PORT", "");
    EXPECT_EQ(expresso::env_uint("EXPRESSO_SERVICE_PORT", 7447, 65535), 7447u);
  }
  {
    ScopedEnv e("EXPRESSO_SERVICE_MAX_SESSIONS", "0");  // 0 is a legal value
    EXPECT_EQ(expresso::env_uint("EXPRESSO_SERVICE_MAX_SESSIONS", 64), 0u);
  }
}

TEST(EnvUintTest, RejectsTrailingGarbageNegativesAndOverflow) {
  for (const char* bad :
       {"7448abc", "abc", "2.5", "7448 ", " 7448", "0x10", "-1", "-7448",
        "99999999999999999999999999"}) {
    ScopedEnv e("EXPRESSO_SERVICE_PORT", bad);
    EXPECT_EQ(expresso::env_uint("EXPRESSO_SERVICE_PORT", 7447, 65535), 7447u)
        << "value: '" << bad << "'";
  }
}

TEST(EnvUintTest, ClampsToMaxValue) {
  ScopedEnv e("EXPRESSO_SERVICE_PORT", "70000");  // above the 65535 ceiling
  EXPECT_EQ(expresso::env_uint("EXPRESSO_SERVICE_PORT", 7447, 65535), 65535u);
}

TEST(ThreadPoolTest, NullPoolFallsBackToSerial) {
  std::vector<int> order;
  support::parallel_for(nullptr, 5,
                        [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

namespace forkjoin {
struct Token {
  std::atomic<int>* hits = nullptr;
  std::atomic<bool> done{false};
};
void run_token(void* arg) {
  auto* t = static_cast<Token*>(arg);
  t->hits->fetch_add(1, std::memory_order_relaxed);
  t->done.store(true, std::memory_order_release);
}
}  // namespace forkjoin

// Every accepted fork runs exactly once — whether a worker steals it or the
// forker drains it via help_one — and the stats ledger balances.
TEST(ThreadPoolTest, ForkJoinRunsEveryAcceptedTaskExactlyOnce) {
  support::ThreadPool pool(4);
  std::atomic<int> hits{0};
  constexpr int kTasks = 200;
  int accepted = 0;
  std::vector<std::unique_ptr<forkjoin::Token>> tokens;
  for (int i = 0; i < kTasks; ++i) {
    auto tok = std::make_unique<forkjoin::Token>();
    tok->hits = &hits;
    if (pool.try_fork({&forkjoin::run_token, tok.get()})) {
      ++accepted;
      tokens.push_back(std::move(tok));
    }
    // Keep the queue moving so backpressure doesn't refuse everything.
    if (i % 3 == 0) pool.help_one();
  }
  for (auto& tok : tokens) {
    while (!tok->done.load(std::memory_order_acquire)) {
      if (!pool.help_one()) std::this_thread::yield();
    }
  }
  EXPECT_GT(accepted, 0);
  EXPECT_EQ(hits.load(), accepted);
  const auto st = pool.task_stats();
  EXPECT_EQ(st.forked, static_cast<std::uint64_t>(accepted));
  EXPECT_EQ(st.executed, static_cast<std::uint64_t>(accepted));
  EXPECT_LE(st.stolen, st.executed);
}

// A single-slot pool has nobody to steal: try_fork must refuse so callers
// always fall back to inline execution.
TEST(ThreadPoolTest, SingleSlotPoolRefusesForks) {
  support::ThreadPool pool(1);
  std::atomic<int> hits{0};
  forkjoin::Token tok;
  tok.hits = &hits;
  EXPECT_FALSE(pool.try_fork({&forkjoin::run_token, &tok}));
  EXPECT_FALSE(pool.help_one());
}

// Forking onto a foreign pool from inside another pool's batch would corrupt
// the foreign deque's slot-ownership discipline; it must be refused.
TEST(ThreadPoolTest, ForeignPoolForkIsRefusedInsideBatch) {
  support::ThreadPool a(2);
  support::ThreadPool b(2);
  std::atomic<int> hits{0};
  std::atomic<int> refused{0};
  a.parallel_for(4, [&](std::size_t) {
    forkjoin::Token tok;
    tok.hits = &hits;
    if (!b.try_fork({&forkjoin::run_token, &tok})) {
      refused.fetch_add(1, std::memory_order_relaxed);
    } else {
      while (!tok.done.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
  });
  EXPECT_EQ(refused.load(), 4);
}

}  // namespace
}  // namespace expresso
