// expresso_fuzz — differential-fuzzing CLI.
//
// Campaign mode (default): generate --runs scenarios from --seed, diff each
// across EPVP / SPVP / the SAT + enumeration baselines, shrink failures, and
// write one self-contained repro file per failure into --out.  The campaign
// is a pure function of (--seed, --runs, --max-nodes): reruns are
// byte-identical (--threads only parallelizes inside the symbolic engine).
//
// Replay mode: --replay FILE re-checks one repro file (shrinking further if
// it still fails and --shrink 1).
//
// Self-test mode: --self-test plants a deliberate preference-comparison bug
// into the concrete oracle; the run *succeeds* (exit 0) iff the harness
// detects the planted bug and shrinks a repro.
//
// Exit codes: 0 = clean campaign (or self-test caught the planted bug),
// 1 = mismatches found (or self-test failed to find any), 2 = usage/IO error.
//
// With EXPRESSO_BENCH_JSON=1, campaign statistics are also emitted as a
// machine-readable `JSON {...}` line (bench/bench_util.hpp convention).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "bench_util.hpp"
#include "support/util.hpp"
#include "fuzz/campaign.hpp"
#include "ir/frontend.hpp"
#include "obs/metrics.hpp"
#include "fuzz/differ.hpp"
#include "fuzz/scenario.hpp"
#include "fuzz/shrink.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: expresso_fuzz [--seed N] [--runs N] [--max-nodes N]\n"
               "                     [--shrink 0|1] [--threads N] [--out DIR]\n"
               "                     [--dialect huawei|rpsl]\n"
               "                     [--no-baselines] [--self-test]\n"
               "                     [--replay FILE]\n");
}

struct Args {
  std::uint64_t seed = 1;
  int runs = 200;
  int max_nodes = 7;
  bool shrink = true;
  int threads = 1;
  std::string out = ".";
  bool baselines = true;
  bool self_test = false;
  std::string replay;
  // Campaign: the dialect scenarios are generated in.  Replay: the repro's
  // IR is re-emitted in this dialect before diffing (a dialect-translation
  // replay).  Unset = campaign generates Huawei, replay keeps the repro's
  // recorded dialect.
  std::optional<expresso::ir::Dialect> dialect;
};

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    // Numeric flags go through the checked parse: std::stoull/std::stoi
    // would throw std::invalid_argument straight out of main on a typo
    // ("--seed 12x") instead of naming the offending flag and exiting 2.
    if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return false;
      a.seed = expresso::cli_uint("expresso_fuzz", "--seed", v);
    } else if (arg == "--runs") {
      const char* v = value();
      if (v == nullptr) return false;
      a.runs = static_cast<int>(
          expresso::cli_uint("expresso_fuzz", "--runs", v, 1u << 30));
    } else if (arg == "--max-nodes") {
      const char* v = value();
      if (v == nullptr) return false;
      a.max_nodes = static_cast<int>(
          expresso::cli_uint("expresso_fuzz", "--max-nodes", v, 1u << 20));
      if (a.max_nodes < 2) a.max_nodes = 2;
    } else if (arg == "--shrink") {
      const char* v = value();
      if (v == nullptr) return false;
      a.shrink = std::strcmp(v, "0") != 0;
    } else if (arg == "--threads") {
      const char* v = value();
      if (v == nullptr) return false;
      a.threads = static_cast<int>(
          expresso::cli_uint("expresso_fuzz", "--threads", v, 4096));
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return false;
      a.out = v;
    } else if (arg == "--dialect") {
      const char* v = value();
      if (v == nullptr) return false;
      a.dialect = expresso::ir::dialect_from_name(v);
      if (!a.dialect) {
        std::fprintf(stderr, "unknown dialect: %s\n", v);
        return false;
      }
    } else if (arg == "--no-baselines") {
      a.baselines = false;
    } else if (arg == "--self-test") {
      a.self_test = true;
    } else if (arg == "--replay") {
      const char* v = value();
      if (v == nullptr) return false;
      a.replay = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

expresso::fuzz::DiffOptions diff_options(const Args& a) {
  expresso::fuzz::DiffOptions d;
  d.threads = a.threads;
  d.check_baselines = a.baselines;
  d.plant_preference_bug = a.self_test;
  return d;
}

int replay(const Args& a) {
  std::ifstream in(a.replay);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", a.replay.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  expresso::fuzz::Scenario s;
  try {
    s = expresso::fuzz::parse_repro(buf.str());
    if (a.dialect && *a.dialect != s.dialect) {
      // Dialect-translation replay: push the repro through the IR and the
      // requested frontend, then diff that emission instead.
      s.config_text = expresso::ir::emit(
          expresso::ir::parse_configs(s.config_text, s.dialect), *a.dialect);
      s.dialect = *a.dialect;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", a.replay.c_str(), e.what());
    return 2;
  }
  const auto r = expresso::fuzz::diff_scenario(s, diff_options(a));
  for (const auto& line : expresso::fuzz::describe(r)) {
    std::printf("%s\n", line.c_str());
  }
  if (r.config_rejected || !r.compared) return 2;
  if (r.mismatches.empty()) return 0;
  if (a.shrink) {
    expresso::fuzz::ShrinkOptions sopt;
    sopt.diff = diff_options(a);
    expresso::fuzz::ShrinkStats ss;
    const auto small = expresso::fuzz::shrink(s, sopt, &ss);
    std::printf("--- shrunk (%d evaluations, %d reductions) ---\n%s",
                ss.evaluations, ss.accepted,
                expresso::fuzz::to_repro(small, {}).c_str());
  }
  return 1;
}

int campaign(const Args& a) {
  expresso::fuzz::CampaignOptions opt;
  opt.seed = a.seed;
  opt.runs = a.runs;
  opt.diff = diff_options(a);
  opt.shrink = a.shrink;
  // Split the node budget between internal routers and external neighbors.
  opt.gen.max_routers = (a.max_nodes + 1) / 2;
  opt.gen.max_externals = a.max_nodes - opt.gen.max_routers;
  if (opt.gen.max_externals < 1) opt.gen.max_externals = 1;
  if (a.dialect) opt.gen.dialect = *a.dialect;

  const auto stats = expresso::fuzz::run_campaign(opt);

  int written = 0;
  for (const auto& f : stats.failures) {
    const std::string path = a.out + "/fuzz_repro_" + std::to_string(a.seed) +
                             "_" + std::to_string(written) + ".txt";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 2;
    }
    out << expresso::fuzz::to_repro(f.shrunk, f.notes);
    std::printf("mismatch: repro written to %s\n", path.c_str());
    ++written;
  }

  std::printf(
      "fuzz campaign: seed=%llu runs=%d agreed=%d mismatched=%d rejected=%d "
      "not_converged=%d baselines_checked=%d shrink_evals=%d %.1fs\n",
      static_cast<unsigned long long>(a.seed), stats.runs, stats.agreed,
      stats.mismatched, stats.rejected, stats.not_converged,
      stats.baselines_checked, stats.shrink_evaluations, stats.seconds);
  benchutil::JsonRow("fuzz")
      .num("seed", static_cast<std::size_t>(a.seed))
      .num("runs", static_cast<std::size_t>(stats.runs))
      .num("agreed", static_cast<std::size_t>(stats.agreed))
      .num("mismatched", static_cast<std::size_t>(stats.mismatched))
      .num("rejected", static_cast<std::size_t>(stats.rejected))
      .num("not_converged", static_cast<std::size_t>(stats.not_converged))
      .num("baselines_checked",
           static_cast<std::size_t>(stats.baselines_checked))
      .num("shrink_evaluations",
           static_cast<std::size_t>(stats.shrink_evaluations))
      .num("seconds", stats.seconds)
      .boolean("self_test", a.self_test)
      .emit();

  // EXPRESSO_METRICS: append the campaign's counters as one metrics
  // document (same format the Session dump uses).
  if (const std::string& mpath = expresso::obs::metrics_env_path();
      !mpath.empty()) {
    expresso::obs::Registry reg;
    reg.counter("fuzz.runs").inc(static_cast<std::uint64_t>(stats.runs));
    reg.counter("fuzz.agreed").inc(static_cast<std::uint64_t>(stats.agreed));
    reg.counter("fuzz.mismatched")
        .inc(static_cast<std::uint64_t>(stats.mismatched));
    reg.counter("fuzz.rejected")
        .inc(static_cast<std::uint64_t>(stats.rejected));
    reg.counter("fuzz.not_converged")
        .inc(static_cast<std::uint64_t>(stats.not_converged));
    reg.counter("fuzz.baselines_checked")
        .inc(static_cast<std::uint64_t>(stats.baselines_checked));
    reg.counter("fuzz.shrink_evaluations")
        .inc(static_cast<std::uint64_t>(stats.shrink_evaluations));
    reg.gauge("fuzz.seconds").set(stats.seconds);
    expresso::obs::append_metrics_line(
        mpath, reg.to_json_document("fuzz_campaign"));
  }

  if (a.self_test) {
    // The planted bug must surface: a clean self-test run is the failure.
    if (stats.mismatched > 0) {
      std::printf("self-test: planted preference bug detected\n");
      return 0;
    }
    std::printf("self-test FAILED: planted bug not detected\n");
    return 1;
  }
  return stats.mismatched == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse_args(argc, argv, a)) {
    usage();
    return 2;
  }
  if (!a.replay.empty()) return replay(a);
  return campaign(a);
}
