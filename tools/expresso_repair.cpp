// expresso_repair — diagnosis & repair CLI (DESIGN.md §14).
//
// Replay mode (default): load a snapshot — either a fuzz repro file written
// by tools/expresso_fuzz (--repro FILE, the recorded dialect is honored) or
// raw configuration text (--config FILE) — then run the repair loop
// (repair/repair.hpp): localize every violating policy term, synthesize
// candidate edits, screen them cheapest-first through warm re-verification
// and cold-cross-check the winner.  Prints the ranked terms, the screening
// log and the winner.
//
// Demo mode: --demo runs --scenarios planted scenarios (repair/plant.hpp,
// the same campaign the "repair" ctest label asserts on) and reports
// localization accuracy plus warm-screening vs cold-verify timing.  With
// EXPRESSO_BENCH_JSON=1 one machine-readable `JSON {...}` row lands on
// stdout (scripts/bench_collect.sh folds it into BENCH_expresso.json).
//
// Exit codes: 0 = clean repair found for every violating snapshot (or the
// battery was already clean), 1 = some snapshot has no clean candidate (or
// a demo scenario missed its localization), 2 = usage/IO error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "expresso/session.hpp"
#include "fuzz/scenario.hpp"
#include "ir/frontend.hpp"
#include "net/community.hpp"
#include "net/prefix.hpp"
#include "repair/plant.hpp"
#include "repair/repair.hpp"
#include "service/client.hpp"
#include "support/util.hpp"

namespace {

using expresso::cli_uint;

void usage() {
  std::fprintf(
      stderr,
      "usage: expresso_repair [--repro FILE | --config FILE]\n"
      "                       [--demo] [--scenarios N] [--seed N]\n"
      "                       [--max-candidates N] [--bte COMMUNITY]\n"
      "                       [--blackhole PREFIX]...\n"
      "                       [--no-leak] [--no-hijack] [--no-loops]\n"
      "                       [--no-traffic]\n"
      "                       [--connect HOST PORT] [--tenant NAME]\n");
}

struct Args {
  std::string repro;
  std::string config;
  bool demo = false;
  std::size_t scenarios = 50;
  std::uint64_t seed = 0xa11ce;
  expresso::repair::RepairSpec spec;
  // --connect: run the loop inside a live expressod via {"op":"repair"}
  // instead of in-process, printing the streamed candidate frames.
  std::string connect_host;
  std::uint16_t connect_port = 0;
  std::string tenant = "expresso_repair";
};

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--repro") {
      const char* v = value();
      if (v == nullptr) return false;
      a.repro = v;
    } else if (arg == "--config") {
      const char* v = value();
      if (v == nullptr) return false;
      a.config = v;
    } else if (arg == "--demo") {
      a.demo = true;
    } else if (arg == "--scenarios") {
      const char* v = value();
      if (v == nullptr) return false;
      a.scenarios = static_cast<std::size_t>(
          cli_uint("expresso_repair", "--scenarios", v, 1u << 20));
    } else if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return false;
      a.seed = cli_uint("expresso_repair", "--seed", v);
    } else if (arg == "--max-candidates") {
      const char* v = value();
      if (v == nullptr) return false;
      a.spec.max_candidates = static_cast<std::size_t>(
          cli_uint("expresso_repair", "--max-candidates", v, 1000));
      if (a.spec.max_candidates == 0) a.spec.max_candidates = 1;
    } else if (arg == "--bte") {
      const char* v = value();
      if (v == nullptr) return false;
      const auto c = expresso::net::Community::parse(v);
      if (!c) {
        std::fprintf(stderr, "expresso_repair: bad community for --bte: '%s'\n",
                     v);
        return false;
      }
      a.spec.bte = *c;
    } else if (arg == "--blackhole") {
      const char* v = value();
      if (v == nullptr) return false;
      const auto p = expresso::net::Ipv4Prefix::parse(v);
      if (!p) {
        std::fprintf(stderr,
                     "expresso_repair: bad prefix for --blackhole: '%s'\n", v);
        return false;
      }
      a.spec.blackhole.push_back(*p);
    } else if (arg == "--connect") {
      const char* host = value();
      const char* port = value();
      if (host == nullptr || port == nullptr) return false;
      a.connect_host = host;
      a.connect_port = static_cast<std::uint16_t>(
          cli_uint("expresso_repair", "--connect", port, 65535));
    } else if (arg == "--tenant") {
      const char* v = value();
      if (v == nullptr) return false;
      a.tenant = v;
    } else if (arg == "--no-leak") {
      a.spec.leak = false;
    } else if (arg == "--no-hijack") {
      a.spec.hijack = false;
    } else if (arg == "--no-loops") {
      a.spec.loops = false;
    } else if (arg == "--no-traffic") {
      a.spec.traffic = false;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "expresso_repair: unknown flag '%s'\n",
                   arg.c_str());
      return false;
    }
  }
  return true;
}

// The screening log + outcome, shared by both modes' verbose paths.
void print_outcome(const expresso::repair::RepairOutcome& out) {
  namespace repair = expresso::repair;
  std::printf("baseline: %zu violation(s), %zu diagnosis(es)\n",
              out.baseline_violations, out.diagnoses.size());
  for (const auto& d : out.diagnoses) {
    std::printf("  %s at %s\n", d.property.c_str(), d.node.c_str());
    for (const auto& t : d.terms) {
      std::printf("    %5.2f %-15s %s", t.score, repair::to_string(t.kind),
                  t.router.c_str());
      if (!t.policy.empty()) {
        std::printf("/%s node %u", t.policy.c_str(), t.clause_node);
      }
      if (!t.peer.empty()) std::printf(" peer %s", t.peer.c_str());
      if (t.static_prefix) {
        std::printf(" static %s", t.static_prefix->to_string().c_str());
      }
      std::printf("  (%s)\n", t.rationale.c_str());
    }
  }
  std::printf("screened %zu of %zu candidate(s):\n", out.screened.size(),
              out.candidates.size());
  for (const auto& sc : out.screened) {
    std::printf("  [%s] %-22s %s: %zu -> %zu violations (%s, %.1f ms)\n",
                sc.clean ? "CLEAN" : sc.applied ? "dirty" : "skip ",
                repair::to_string(sc.candidate.kind),
                sc.candidate.description.c_str(), sc.violations_before,
                sc.violations_after, sc.warm ? "warm" : "cold",
                sc.verify_seconds * 1e3);
  }
  if (out.winner) {
    std::printf("winner: %s\n", out.winner->description.c_str());
    std::printf("cold cross-check: %s (warm screen %.1f ms, cold verify "
                "%.1f ms)\n",
                out.cold_check_passed ? "byte-identical" : "DIVERGED",
                out.warm_screen_seconds * 1e3, out.cold_verify_seconds * 1e3);
  } else if (out.clean) {
    std::printf("battery already clean; nothing to repair\n");
  } else {
    std::printf("no clean candidate\n");
  }
}

// {"op":"repair"} against a live expressod: the same loop, run inside the
// daemon, with the screening log arriving as streamed candidate frames.
int remote_repair(const Args& a, const std::string& config_text,
                  const std::string& dialect) {
  namespace service = expresso::service;
  service::RepairOptions opts;
  opts.dialect = dialect;
  for (const auto& p : a.spec.blackhole) {
    opts.blackhole.push_back(p.to_string());
  }
  opts.leak = a.spec.leak;
  opts.hijack = a.spec.hijack;
  opts.loops = a.spec.loops;
  opts.traffic = a.spec.traffic;
  if (a.spec.bte) opts.bte = a.spec.bte->to_string();
  opts.max_candidates = a.spec.max_candidates;
  service::Client client;
  service::Client::RepairResult r;
  try {
    client.connect(a.connect_host, a.connect_port);
    r = client.repair(a.tenant, config_text, 1, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "expresso_repair: %s\n", e.what());
    return 2;
  }
  if (!r.ok) {
    std::fprintf(stderr, "expresso_repair: server error: %s\n",
                 r.error.c_str());
    return 2;
  }
  std::printf("baseline: %llu violation(s), %llu diagnosis(es) "
              "(tenant %s @ %s:%u)\n",
              static_cast<unsigned long long>(r.baseline_violations),
              static_cast<unsigned long long>(r.diagnoses), a.tenant.c_str(),
              a.connect_host.c_str(), a.connect_port);
  std::printf("screened %llu of %llu candidate(s):\n",
              static_cast<unsigned long long>(r.screened),
              static_cast<unsigned long long>(r.synthesized));
  for (const auto& c : r.candidates) {
    std::printf("  [%s] %-22s %s: %llu -> %llu violations (%s, %.1f ms)\n",
                c.clean ? "CLEAN" : c.applied ? "dirty" : "skip ",
                c.edit.c_str(), c.description.c_str(),
                static_cast<unsigned long long>(c.violations_before),
                static_cast<unsigned long long>(c.violations_after),
                c.warm ? "warm" : "cold", c.verify_ms);
  }
  if (!r.winner.empty()) {
    std::printf("winner: %s\n", r.winner.c_str());
    std::printf("cold cross-check: %s (warm screen %.1f ms, cold verify "
                "%.1f ms)\n",
                r.cold_check_passed ? "byte-identical" : "DIVERGED",
                r.warm_screen_ms, r.cold_verify_ms);
  } else if (r.clean) {
    std::printf("battery already clean; nothing to repair\n");
  } else {
    std::printf("no clean candidate\n");
  }
  if (!r.clean) return 1;
  return r.cold_check_ran && !r.cold_check_passed ? 1 : 0;
}

int replay(const Args& a) {
  std::ifstream in(a.repro.empty() ? a.config : a.repro);
  if (!in) {
    std::fprintf(stderr, "expresso_repair: cannot read %s\n",
                 (a.repro.empty() ? a.config : a.repro).c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  std::string config_text = buf.str();
  std::string dialect;
  expresso::fuzz::Scenario s;
  if (!a.repro.empty()) {
    try {
      s = expresso::fuzz::parse_repro(config_text);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "expresso_repair: %s\n", e.what());
      return 2;
    }
    config_text = s.config_text;
    dialect = expresso::ir::dialect_name(s.dialect);
  }
  if (!a.connect_host.empty()) return remote_repair(a, config_text, dialect);

  expresso::Session session;
  try {
    if (dialect.empty()) {
      session.update(config_text);
    } else {
      session.update(config_text, s.dialect);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "expresso_repair: %s\n", e.what());
    return 2;
  }

  const expresso::repair::RepairOutcome out =
      expresso::repair::repair(session, a.spec);
  print_outcome(out);
  if (!out.clean) return 1;
  return out.cold_check_ran && !out.cold_check_passed ? 1 : 0;
}

int demo(const Args& a) {
  namespace plant = expresso::repair::plant;
  std::size_t manifested = 0, top1 = 0, top3 = 0, repaired = 0, screens = 0;
  std::size_t warm_screens = 0;
  double warm_screen_s = 0, cold_verify_s = 0;
  expresso::Stopwatch wall;
  for (std::size_t i = 0; i < a.scenarios; ++i) {
    const plant::Scenario sc = plant::make_scenario(a.seed, i);
    expresso::Session session;
    session.load(sc.broken);
    const expresso::repair::RepairOutcome out =
        expresso::repair::repair(session, a.spec);
    if (out.baseline_violations == 0) continue;
    ++manifested;
    bool in3 = false, in1 = false;
    for (const auto& d : out.diagnoses) {
      in3 = in3 || plant::truth_in_top(d.terms, sc.truth, 3);
      in1 = in1 || plant::truth_in_top(d.terms, sc.truth, 1);
    }
    top3 += in3;
    top1 += in1;
    if (out.winner && out.cold_check_passed) ++repaired;
    screens += out.screened.size();
    for (const auto& s : out.screened) warm_screens += s.warm;
    warm_screen_s += out.warm_screen_seconds;
    cold_verify_s += out.cold_verify_seconds;
  }
  const double warm_ms_per_screen =
      screens > 0 ? warm_screen_s * 1e3 / static_cast<double>(screens) : 0;
  const double cold_ms_per_verify =
      repaired > 0 ? cold_verify_s * 1e3 / static_cast<double>(repaired) : 0;
  const double speedup =
      warm_ms_per_screen > 0 ? cold_ms_per_verify / warm_ms_per_screen : 0;
  std::printf(
      "repair demo: %zu scenarios (%zu manifested) | localization top-1 "
      "%zu top-3 %zu | clean repairs %zu | %zu screens (%zu warm, "
      "%.2f ms avg) vs cold verify %.2f ms avg => x%.1f | wall %.1fs\n",
      a.scenarios, manifested, top1, top3, repaired, screens, warm_screens,
      warm_ms_per_screen, cold_ms_per_verify, speedup, wall.seconds());
  benchutil::JsonRow("repair_demo")
      .num("seed", static_cast<std::size_t>(a.seed))
      .num("scenarios", a.scenarios)
      .num("manifested", manifested)
      .num("localized_top1", top1)
      .num("localized_top3", top3)
      .num("clean_repairs", repaired)
      .num("screens", screens)
      .num("warm_screens", warm_screens)
      .num("warm_screen_s", warm_screen_s)
      .num("cold_verify_s", cold_verify_s)
      .num("warm_ms_per_screen", warm_ms_per_screen)
      .num("cold_ms_per_verify", cold_ms_per_verify)
      .num("warm_vs_cold_speedup", speedup)
      .num("wall_s", wall.seconds())
      .emit();
  return manifested == a.scenarios && top3 == manifested &&
                 repaired == manifested
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse_args(argc, argv, a)) {
    usage();
    return 2;
  }
  if (a.demo) return demo(a);
  if (a.repro.empty() && a.config.empty()) {
    usage();
    return 2;
  }
  if (!a.repro.empty() && !a.config.empty()) {
    std::fprintf(stderr,
                 "expresso_repair: --repro and --config are exclusive\n");
    return 2;
  }
  return replay(a);
}
