// expressod — the long-lived verification service binary (DESIGN.md §11).
//
//   expressod [--port N] [--workers N] [--max-sessions N]
//             [--session-threads N] [--watermark-nodes N]
//             [--session-node-budget N] [--coalesce-ms N]
//             [--http-port N] [--slow-request-ms N]
//             [--verify-warm] [--listen-any]
//
// Environment (flags win):
//   EXPRESSO_SERVICE_PORT          listen port (default 7447)
//   EXPRESSO_SERVICE_MAX_SESSIONS  resident-session ceiling (default 64)
//   EXPRESSO_HTTP_PORT             diagnostics sidecar port serving
//                                  GET /metrics + /healthz (unset = off,
//                                  0 = ephemeral)
//   EXPRESSO_SLOW_REQUEST_MS       log requests slower than this with their
//                                  per-stage breakdown (unset/0 = off)
//   EXPRESSO_LOG / EXPRESSO_LOG_LEVEL / EXPRESSO_LOG_RATE
//                                  structured JSON-lines logging (obs/log.hpp)
//
// Runs until SIGINT/SIGTERM, then shuts down gracefully (drains the
// admission queue, joins every worker and reader, destroys all sessions).
// On a fatal signal (SIGSEGV/SIGABRT/SIGBUS) the flight recorder — the ring
// of recent admit/coalesce/verify/evict events — is dumped to stderr before
// the default handler re-raises, so a crashed daemon leaves a postmortem
// even with logging and tracing off.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "obs/log.hpp"
#include "service/server.hpp"
#include "support/util.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

// Installed only after the server exists; cleared before it dies.
expresso::obs::FlightRecorder* g_flight = nullptr;

void handle_fatal(int sig) {
  // Best-effort: the recorder's dump path is fixed-buffer snprintf + write,
  // no locks, no allocation.  Then fall through to the default disposition
  // so the exit status still reflects the crash.
  if (g_flight != nullptr) g_flight->dump_to_stderr();
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

// The checked parse shared with expresso_fuzz / expressod_load (it used to
// live here as a private strtoull wrapper).
std::uint64_t parse_arg(const char* flag, const char* value,
                        std::uint64_t max) {
  return expresso::cli_uint("expressod", flag, value, max);
}

}  // namespace

int main(int argc, char** argv) {
  using expresso::env_uint;
  expresso::service::ServerOptions opt;
  opt.port = static_cast<std::uint16_t>(
      env_uint("EXPRESSO_SERVICE_PORT", 7447, 65535));
  opt.max_sessions = static_cast<std::size_t>(
      env_uint("EXPRESSO_SERVICE_MAX_SESSIONS", 64, 1u << 20));
  // EXPRESSO_HTTP_PORT is presence-sensitive (0 means "ephemeral", unset
  // means "off"), so env_uint's default cannot express it.
  if (const char* p = std::getenv("EXPRESSO_HTTP_PORT"); p != nullptr && *p) {
    opt.http_port =
        static_cast<int>(parse_arg("EXPRESSO_HTTP_PORT", p, 65535));
  }
  opt.slow_request_ms = static_cast<int>(
      env_uint("EXPRESSO_SLOW_REQUEST_MS", 0, 24u * 3600u * 1000u));

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "expressod: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--port") {
      opt.port = static_cast<std::uint16_t>(
          parse_arg("--port", next("--port"), 65535));
    } else if (a == "--workers") {
      opt.workers =
          static_cast<int>(parse_arg("--workers", next("--workers"), 1024));
    } else if (a == "--max-sessions") {
      opt.max_sessions = static_cast<std::size_t>(
          parse_arg("--max-sessions", next("--max-sessions"), 1u << 20));
    } else if (a == "--session-threads") {
      opt.session_threads = static_cast<int>(
          parse_arg("--session-threads", next("--session-threads"), 256));
    } else if (a == "--watermark-nodes") {
      opt.max_total_bdd_nodes = static_cast<std::size_t>(parse_arg(
          "--watermark-nodes", next("--watermark-nodes"), UINT64_MAX));
    } else if (a == "--session-node-budget") {
      opt.per_session_bdd_budget = static_cast<std::size_t>(parse_arg(
          "--session-node-budget", next("--session-node-budget"), UINT64_MAX));
    } else if (a == "--coalesce-ms") {
      opt.coalesce_ms = static_cast<int>(
          parse_arg("--coalesce-ms", next("--coalesce-ms"), 60000));
    } else if (a == "--http-port") {
      opt.http_port = static_cast<int>(
          parse_arg("--http-port", next("--http-port"), 65535));
    } else if (a == "--slow-request-ms") {
      opt.slow_request_ms = static_cast<int>(parse_arg(
          "--slow-request-ms", next("--slow-request-ms"),
          24u * 3600u * 1000u));
    } else if (a == "--verify-warm") {
      opt.verify_warm = true;
    } else if (a == "--listen-any") {
      opt.bind_any = true;
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: expressod [--port N] [--workers N] [--max-sessions N]\n"
          "                 [--session-threads N] [--watermark-nodes N]\n"
          "                 [--session-node-budget N] [--coalesce-ms N]\n"
          "                 [--http-port N] [--slow-request-ms N]\n"
          "                 [--verify-warm] [--listen-any]\n");
      return 0;
    } else {
      std::fprintf(stderr, "expressod: unknown flag '%s' (try --help)\n",
                   a.c_str());
      return 2;
    }
  }

  expresso::service::Server server(opt);
  std::uint16_t port = 0;
  try {
    port = server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "expressod: %s\n", e.what());
    return 1;
  }
  std::printf("expressod: listening on %s:%u (%d workers, %zu session slots)\n",
              opt.bind_any ? "0.0.0.0" : "127.0.0.1", port, opt.workers,
              opt.max_sessions);
  if (server.http_port() != 0) {
    std::printf("expressod: http diagnostics on %s:%u (/metrics, /healthz)\n",
                opt.bind_any ? "0.0.0.0" : "127.0.0.1", server.http_port());
  }
  std::fflush(stdout);

  g_flight = &server.flight();
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGSEGV, handle_fatal);
  std::signal(SIGABRT, handle_fatal);
  std::signal(SIGBUS, handle_fatal);
  while (g_stop == 0) {
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  std::printf("expressod: shutting down\n");
  std::fflush(stdout);
  server.stop();
  g_flight = nullptr;
  std::signal(SIGSEGV, SIG_DFL);
  std::signal(SIGABRT, SIG_DFL);
  std::signal(SIGBUS, SIG_DFL);
  return 0;
}
