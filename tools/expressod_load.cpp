// expressod_load — concurrent-tenant load generator for expressod.
//
// Replays src/fuzz edit chains as tenant traffic: every tenant is one
// connection pushing a fuzz-generated base snapshot followed by a chain of
// single-router edits (fuzz::apply_random_edit), waiting for the streamed
// verdicts of each push, and recording end-to-end latency.  By default the
// tool embeds its own Server on an ephemeral loopback port so a single
// command exercises the full stack; --connect drives an external expressod.
//
//   expressod_load [--tenants N] [--edits N] [--seed S] [--workers N]
//                  [--coalesce-ms N] [--connect HOST PORT]
//
// Exit code is non-zero when any request failed (protocol error, error
// frame, or non-converged verify).  With EXPRESSO_BENCH_JSON=1 one summary
// row lands on stdout (scripts/bench_collect.sh folds it into
// BENCH_expresso.json):
//
//   JSON {"bench":"expressod_load","tenants":4,"edits_per_tenant":50,
//         "requests":204,"errors":0,"p50_ms":...,"p95_ms":...,"p99_ms":...,
//         "warm_runs":...,"coalesced":...,"evictions":...,"wall_s":...}
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "ir/ir.hpp"
#include "ir/frontend.hpp"
#include "fuzz/edits.hpp"
#include "fuzz/generator.hpp"
#include "obs/trace_check.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "support/util.hpp"

namespace {

struct LoadOptions {
  int tenants = 4;
  int edits = 50;
  std::uint64_t seed = 0x10adbeef;
  int workers = 2;
  int coalesce_ms = 0;
  std::string connect_host;  // empty = embed a server
  std::uint16_t connect_port = 0;
};

struct TenantOutcome {
  std::vector<double> latencies_ms;
  int errors = 0;
  int warm_runs = 0;
};

void run_tenant(const LoadOptions& opt, const std::string& host,
                std::uint16_t port, int index, TenantOutcome& out) {
  const std::uint64_t seed =
      opt.seed + static_cast<std::uint64_t>(index) * 1000003u;
  const auto sc = expresso::fuzz::generate_scenario(seed);
  std::vector<expresso::ir::RouterConfig> snapshot;
  try {
    snapshot = expresso::ir::parse_configs(sc.config_text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tenant %d: unparseable scenario: %s\n", index,
                 e.what());
    out.errors += 1;
    return;
  }
  std::vector<std::string> blackhole;
  for (const auto& p : sc.pool) blackhole.push_back(p.to_string());
  const std::string tenant = "tenant-" + std::to_string(index);

  expresso::service::Client client;
  try {
    client.connect(host, port);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tenant %d: %s\n", index, e.what());
    out.errors += opt.edits + 1;
    return;
  }

  std::uint64_t request_id = 1;
  // Alternate dialects across tenants so the load run also exercises the
  // server's per-push frontend sniffing.
  const expresso::ir::Dialect dialect = (index % 2 == 0)
                                            ? expresso::ir::Dialect::kHuawei
                                            : expresso::ir::Dialect::kRpsl;
  auto push = [&](const std::vector<expresso::ir::RouterConfig>& cfgs) {
    expresso::Stopwatch sw;
    try {
      const auto result = client.update(
          tenant, expresso::ir::emit(cfgs, dialect), blackhole, request_id++);
      out.latencies_ms.push_back(sw.millis());
      if (!result.ok) {
        std::fprintf(stderr, "tenant %d: error response: %s\n", index,
                     result.error.c_str());
        out.errors += 1;
      } else if (result.warm) {
        out.warm_runs += 1;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "tenant %d: %s\n", index, e.what());
      out.errors += 1;
    }
  };

  push(snapshot);  // cold load
  for (int e = 0; e < opt.edits; ++e) {
    const auto edit = expresso::fuzz::apply_random_edit(
        snapshot, seed * 31 + static_cast<std::uint64_t>(e) * 7 + 13);
    snapshot = edit.configs;
    push(snapshot);
  }
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

// Pulls one counter out of a metrics document ({"op":"metrics"} response).
double metrics_counter(const expresso::obs::JsonValue& doc,
                       const std::string& name) {
  const auto* counters = doc.find("counters");
  if (counters == nullptr) return 0;
  const auto* c = counters->find(name);
  return c != nullptr ? c->num : 0;
}

}  // namespace

int main(int argc, char** argv) {
  LoadOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "expressod_load: %s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--tenants") {
      opt.tenants = std::max(1, std::atoi(next()));
    } else if (a == "--edits") {
      opt.edits = std::max(0, std::atoi(next()));
    } else if (a == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 0);
    } else if (a == "--workers") {
      opt.workers = std::max(1, std::atoi(next()));
    } else if (a == "--coalesce-ms") {
      opt.coalesce_ms = std::max(0, std::atoi(next()));
    } else if (a == "--connect") {
      opt.connect_host = next();
      opt.connect_port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: expressod_load [--tenants N] [--edits N] [--seed S]\n"
          "                      [--workers N] [--coalesce-ms N]\n"
          "                      [--connect HOST PORT]\n");
      return 0;
    } else {
      std::fprintf(stderr, "expressod_load: unknown flag '%s'\n", a.c_str());
      return 2;
    }
  }

  std::unique_ptr<expresso::service::Server> embedded;
  std::string host = opt.connect_host;
  std::uint16_t port = opt.connect_port;
  if (host.empty()) {
    expresso::service::ServerOptions so;
    so.port = 0;
    so.workers = opt.workers;
    so.coalesce_ms = opt.coalesce_ms;
    embedded = std::make_unique<expresso::service::Server>(so);
    port = embedded->start();
    host = "127.0.0.1";
  }
  std::printf("expressod_load: %d tenants x %d edits against %s:%u\n",
              opt.tenants, opt.edits, host.c_str(), port);

  expresso::Stopwatch wall;
  std::vector<TenantOutcome> outcomes(
      static_cast<std::size_t>(opt.tenants));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(opt.tenants));
  for (int t = 0; t < opt.tenants; ++t) {
    threads.emplace_back([&, t] {
      run_tenant(opt, host, port, t, outcomes[static_cast<std::size_t>(t)]);
    });
  }
  for (auto& th : threads) th.join();
  const double wall_s = wall.seconds();

  std::vector<double> latencies;
  int errors = 0;
  int warm_runs = 0;
  for (const auto& o : outcomes) {
    latencies.insert(latencies.end(), o.latencies_ms.begin(),
                     o.latencies_ms.end());
    errors += o.errors;
    warm_runs += o.warm_runs;
  }
  std::sort(latencies.begin(), latencies.end());
  double mean = 0;
  for (double v : latencies) mean += v;
  if (!latencies.empty()) mean /= static_cast<double>(latencies.size());
  const double p50 = percentile(latencies, 50);
  const double p95 = percentile(latencies, 95);
  const double p99 = percentile(latencies, 99);
  const double pmax = latencies.empty() ? 0 : latencies.back();

  // Service-side tallies, fetched over the wire like any client would.
  double coalesced = 0, evictions = 0, protocol_errors = 0;
  try {
    expresso::service::Client mc;
    mc.connect(host, port);
    expresso::obs::JsonValue doc;
    std::string err;
    if (expresso::obs::parse_json(mc.metrics(), doc, err)) {
      coalesced = metrics_counter(doc, "service.coalesced");
      evictions = metrics_counter(doc, "service.evictions");
      protocol_errors = metrics_counter(doc, "service.protocol_errors");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "expressod_load: metrics fetch failed: %s\n",
                 e.what());
  }

  std::printf(
      "expressod_load: %zu requests, %d errors, %d warm | latency ms "
      "p50=%.2f p95=%.2f p99=%.2f mean=%.2f max=%.2f | wall %.2fs | "
      "coalesced=%.0f evictions=%.0f protocol_errors=%.0f\n",
      latencies.size(), errors, warm_runs, p50, p95, p99, mean, pmax, wall_s,
      coalesced, evictions, protocol_errors);

  benchutil::JsonRow("expressod_load")
      .num("tenants", static_cast<std::size_t>(opt.tenants))
      .num("edits_per_tenant", static_cast<std::size_t>(opt.edits))
      .num("requests", latencies.size())
      .num("errors", static_cast<std::size_t>(errors))
      .num("warm_runs", static_cast<std::size_t>(warm_runs))
      .num("p50_ms", p50)
      .num("p95_ms", p95)
      .num("p99_ms", p99)
      .num("mean_ms", mean)
      .num("max_ms", pmax)
      .num("wall_s", wall_s)
      .num("coalesced", coalesced)
      .num("evictions", evictions)
      .num("protocol_errors", protocol_errors)
      .emit();

  if (embedded) embedded->stop();
  return (errors == 0 && protocol_errors == 0) ? 0 : 1;
}
