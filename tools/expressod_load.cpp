// expressod_load — concurrent-tenant load generator for expressod.
//
// Replays src/fuzz edit chains as tenant traffic: every tenant is one
// connection pushing a fuzz-generated base snapshot followed by a chain of
// single-router edits (fuzz::apply_random_edit), waiting for the streamed
// verdicts of each push, and recording end-to-end latency.  By default the
// tool embeds its own Server on an ephemeral loopback port so a single
// command exercises the full stack; --connect drives an external expressod.
//
//   expressod_load [--tenants N] [--edits N] [--seed S] [--workers N]
//                  [--coalesce-ms N] [--connect HOST PORT] [--json PATH]
//
// Exit code is non-zero when any request failed (protocol error, error
// frame, or non-converged verify).  With EXPRESSO_BENCH_JSON=1 one summary
// row lands on stdout (scripts/bench_collect.sh folds it into
// BENCH_expresso.json):
//
//   JSON {"bench":"expressod_load","tenants":4,"edits_per_tenant":50,
//         "requests":204,"errors":0,"p50_ms":...,"p95_ms":...,"p99_ms":...,
//         "warm_runs":...,"coalesced":...,"evictions":...,"wall_s":...}
//
// --json PATH additionally appends the same rows directly to PATH (one JSON
// object per line, no prefix, regardless of EXPRESSO_BENCH_JSON), and a
// second pass replays tenant 0's chain with "profile":true so the cost of
// profile-enabled requests lands next to the plain rows ("profile":1).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "ir/ir.hpp"
#include "ir/frontend.hpp"
#include "fuzz/edits.hpp"
#include "fuzz/generator.hpp"
#include "obs/trace_check.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "support/util.hpp"

namespace {

struct LoadOptions {
  int tenants = 4;
  int edits = 50;
  std::uint64_t seed = 0x10adbeef;
  int workers = 2;
  int coalesce_ms = 0;
  std::string connect_host;  // empty = embed a server
  std::uint16_t connect_port = 0;
  std::string json_path;  // --json: append summary rows here
};

struct TenantOutcome {
  std::vector<double> latencies_ms;
  int errors = 0;
  int warm_runs = 0;
};

void run_tenant(const LoadOptions& opt, const std::string& host,
                std::uint16_t port, int index, TenantOutcome& out,
                bool profile = false) {
  const std::uint64_t seed =
      opt.seed + static_cast<std::uint64_t>(index) * 1000003u;
  const auto sc = expresso::fuzz::generate_scenario(seed);
  std::vector<expresso::ir::RouterConfig> snapshot;
  try {
    snapshot = expresso::ir::parse_configs(sc.config_text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tenant %d: unparseable scenario: %s\n", index,
                 e.what());
    out.errors += 1;
    return;
  }
  std::vector<std::string> blackhole;
  for (const auto& p : sc.pool) blackhole.push_back(p.to_string());
  // The profile pass gets its own tenant so it replays the full cold+edit
  // chain instead of warm-starting off the plain pass's session.
  const std::string tenant = (profile ? "profile-tenant-" : "tenant-") +
                             std::to_string(index);

  expresso::service::Client client;
  try {
    client.connect(host, port);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tenant %d: %s\n", index, e.what());
    out.errors += opt.edits + 1;
    return;
  }

  std::uint64_t request_id = 1;
  // Alternate dialects across tenants so the load run also exercises the
  // server's per-push frontend sniffing.
  const expresso::ir::Dialect dialect = (index % 2 == 0)
                                            ? expresso::ir::Dialect::kHuawei
                                            : expresso::ir::Dialect::kRpsl;
  auto push = [&](const std::vector<expresso::ir::RouterConfig>& cfgs) {
    expresso::service::UpdateOptions uo;
    if (profile) {
      uo.profile = true;
      uo.trace_id = tenant + "-" + std::to_string(request_id);
    }
    expresso::Stopwatch sw;
    try {
      const auto result = client.update(
          tenant, expresso::ir::emit(cfgs, dialect), blackhole, request_id++,
          uo);
      out.latencies_ms.push_back(sw.millis());
      if (profile && result.ok && result.profile.empty()) {
        std::fprintf(stderr,
                     "tenant %d: profile requested but breakdown missing\n",
                     index);
        out.errors += 1;
      }
      if (!result.ok) {
        std::fprintf(stderr, "tenant %d: error response: %s\n", index,
                     result.error.c_str());
        out.errors += 1;
      } else if (result.warm) {
        out.warm_runs += 1;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "tenant %d: %s\n", index, e.what());
      out.errors += 1;
    }
  };

  push(snapshot);  // cold load
  for (int e = 0; e < opt.edits; ++e) {
    const auto edit = expresso::fuzz::apply_random_edit(
        snapshot, seed * 31 + static_cast<std::uint64_t>(e) * 7 + 13);
    snapshot = edit.configs;
    push(snapshot);
  }
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

// Latency digest of one load pass (plain or profile-enabled).
struct PassStats {
  std::size_t requests = 0;
  int errors = 0;
  int warm_runs = 0;
  double wall_s = 0;
  double p50 = 0, p95 = 0, p99 = 0, mean = 0, pmax = 0;
};

PassStats summarize(const std::vector<TenantOutcome>& outcomes,
                    double wall_s) {
  PassStats s;
  s.wall_s = wall_s;
  std::vector<double> latencies;
  for (const auto& o : outcomes) {
    latencies.insert(latencies.end(), o.latencies_ms.begin(),
                     o.latencies_ms.end());
    s.errors += o.errors;
    s.warm_runs += o.warm_runs;
  }
  std::sort(latencies.begin(), latencies.end());
  s.requests = latencies.size();
  for (double v : latencies) s.mean += v;
  if (!latencies.empty()) s.mean /= static_cast<double>(latencies.size());
  s.p50 = percentile(latencies, 50);
  s.p95 = percentile(latencies, 95);
  s.p99 = percentile(latencies, 99);
  s.pmax = latencies.empty() ? 0 : latencies.back();
  return s;
}

// Pulls one counter out of a metrics document ({"op":"metrics"} response).
double metrics_counter(const expresso::obs::JsonValue& doc,
                       const std::string& name) {
  const auto* counters = doc.find("counters");
  if (counters == nullptr) return 0;
  const auto* c = counters->find(name);
  return c != nullptr ? c->num : 0;
}

}  // namespace

int main(int argc, char** argv) {
  LoadOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "expressod_load: %s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    // Checked numeric parsing: std::atoi silently turned a typo into 0 (a
    // "--tenants 4x" run quietly became single-tenant) and the PORT of
    // --connect silently truncated through uint16_t, so --connect host
    // 70000 dialed port 4464 instead of failing.
    if (a == "--tenants") {
      opt.tenants = std::max(
          1, static_cast<int>(expresso::cli_uint("expressod_load", "--tenants",
                                                 next(), 1u << 20)));
    } else if (a == "--edits") {
      opt.edits = static_cast<int>(
          expresso::cli_uint("expressod_load", "--edits", next(), 1u << 30));
    } else if (a == "--seed") {
      opt.seed = expresso::cli_uint("expressod_load", "--seed", next());
    } else if (a == "--workers") {
      opt.workers = std::max(
          1, static_cast<int>(expresso::cli_uint("expressod_load", "--workers",
                                                 next(), 1024)));
    } else if (a == "--coalesce-ms") {
      opt.coalesce_ms = static_cast<int>(expresso::cli_uint(
          "expressod_load", "--coalesce-ms", next(), 60000));
    } else if (a == "--connect") {
      opt.connect_host = next();
      opt.connect_port = static_cast<std::uint16_t>(
          expresso::cli_uint("expressod_load", "--connect", next(), 65535));
    } else if (a == "--json") {
      opt.json_path = next();
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: expressod_load [--tenants N] [--edits N] [--seed S]\n"
          "                      [--workers N] [--coalesce-ms N]\n"
          "                      [--connect HOST PORT] [--json PATH]\n");
      return 0;
    } else {
      std::fprintf(stderr, "expressod_load: unknown flag '%s'\n", a.c_str());
      return 2;
    }
  }

  std::unique_ptr<expresso::service::Server> embedded;
  std::string host = opt.connect_host;
  std::uint16_t port = opt.connect_port;
  if (host.empty()) {
    expresso::service::ServerOptions so;
    so.port = 0;
    so.workers = opt.workers;
    so.coalesce_ms = opt.coalesce_ms;
    embedded = std::make_unique<expresso::service::Server>(so);
    port = embedded->start();
    host = "127.0.0.1";
  }
  std::printf("expressod_load: %d tenants x %d edits against %s:%u\n",
              opt.tenants, opt.edits, host.c_str(), port);

  expresso::Stopwatch wall;
  std::vector<TenantOutcome> outcomes(
      static_cast<std::size_t>(opt.tenants));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(opt.tenants));
  for (int t = 0; t < opt.tenants; ++t) {
    threads.emplace_back([&, t] {
      run_tenant(opt, host, port, t, outcomes[static_cast<std::size_t>(t)]);
    });
  }
  for (auto& th : threads) th.join();
  const PassStats plain = summarize(outcomes, wall.seconds());

  // Second pass: tenant 0's chain again, single-threaded, with
  // "profile":true on every request, so BENCH_expresso.json carries the
  // profile-enabled latency distribution next to the plain one.
  expresso::Stopwatch profile_wall;
  std::vector<TenantOutcome> profile_outcomes(1);
  run_tenant(opt, host, port, /*index=*/0, profile_outcomes[0],
             /*profile=*/true);
  const PassStats profiled = summarize(profile_outcomes,
                                       profile_wall.seconds());

  // Service-side tallies, fetched over the wire like any client would.
  double coalesced = 0, evictions = 0, protocol_errors = 0;
  try {
    expresso::service::Client mc;
    mc.connect(host, port);
    expresso::obs::JsonValue doc;
    std::string err;
    if (expresso::obs::parse_json(mc.metrics(), doc, err)) {
      coalesced = metrics_counter(doc, "service.coalesced");
      evictions = metrics_counter(doc, "service.evictions");
      protocol_errors = metrics_counter(doc, "service.protocol_errors");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "expressod_load: metrics fetch failed: %s\n",
                 e.what());
  }

  std::printf(
      "expressod_load: %zu requests, %d errors, %d warm | latency ms "
      "p50=%.2f p95=%.2f p99=%.2f mean=%.2f max=%.2f | wall %.2fs | "
      "coalesced=%.0f evictions=%.0f protocol_errors=%.0f\n",
      plain.requests, plain.errors, plain.warm_runs, plain.p50, plain.p95,
      plain.p99, plain.mean, plain.pmax, plain.wall_s, coalesced, evictions,
      protocol_errors);
  std::printf(
      "expressod_load: profile pass %zu requests, %d errors | latency ms "
      "p50=%.2f p95=%.2f p99=%.2f mean=%.2f max=%.2f | wall %.2fs\n",
      profiled.requests, profiled.errors, profiled.p50, profiled.p95,
      profiled.p99, profiled.mean, profiled.pmax, profiled.wall_s);

  auto build_row = [&](const PassStats& s, bool profile, int tenants) {
    benchutil::JsonRow row("expressod_load");
    row.boolean("profile", profile)
        .num("tenants", static_cast<std::size_t>(tenants))
        .num("edits_per_tenant", static_cast<std::size_t>(opt.edits))
        .num("requests", s.requests)
        .num("errors", static_cast<std::size_t>(s.errors))
        .num("warm_runs", static_cast<std::size_t>(s.warm_runs))
        .num("p50_ms", s.p50)
        .num("p95_ms", s.p95)
        .num("p99_ms", s.p99)
        .num("mean_ms", s.mean)
        .num("max_ms", s.pmax)
        .num("wall_s", s.wall_s);
    if (!profile) {
      row.num("coalesced", coalesced)
          .num("evictions", evictions)
          .num("protocol_errors", protocol_errors);
    }
    return row;
  };
  const benchutil::JsonRow plain_row = build_row(plain, false, opt.tenants);
  const benchutil::JsonRow profile_row = build_row(profiled, true, 1);
  plain_row.emit();
  profile_row.emit();
  if (!opt.json_path.empty()) {
    std::FILE* f = std::fopen(opt.json_path.c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "expressod_load: cannot open %s for append\n",
                   opt.json_path.c_str());
      if (embedded) embedded->stop();
      return 1;
    }
    std::fprintf(f, "%s\n%s\n", plain_row.json().c_str(),
                 profile_row.json().c_str());
    std::fclose(f);
  }

  if (embedded) embedded->stop();
  const int errors = plain.errors + profiled.errors;
  return (errors == 0 && protocol_errors == 0) ? 0 : 1;
}
