// Perf smoke for the parallel BDD substrate (scripts/check.sh step): runs
// SRC+SPF+RouteLeakFree on region2 at 1 and 4 threads and fails when
// parallelism stops paying.
//
//   - CPU bound (any host): 4-thread CPU-seconds must stay within 1.3x the
//     serial run plus a small absolute floor — threads must not burn cycles
//     re-deriving each other's subresults or spinning on stripe locks.
//   - Wall bound (>= 4 cores only): the 4-thread wall time must not exceed
//     the serial wall time.  On smaller hosts wall speedup is physically
//     impossible, so only the CPU bound gates there.
//
// Determinism rides along: node counts, PEC counts and verdicts must be
// identical across the two runs, else the smoke fails regardless of timing.
#include <cstdio>
#include <thread>

#include "expresso/verifier.hpp"
#include "gen/datasets.hpp"
#include "support/util.hpp"

int main() {
  using namespace expresso;
  const auto specs = gen::csp_region_specs(gen::Snapshot::kOld);
  if (specs.size() < 2) {
    std::fprintf(stderr, "perf_smoke: region specs missing\n");
    return 1;
  }
  const auto dataset = gen::make_region(specs[1], 1, 7);  // region2

  struct Run {
    double wall = 0;
    double cpu = 0;
    std::size_t nodes = 0;
    std::size_t pecs = 0;
    std::size_t violations = 0;
  };
  auto run_at = [&](int threads) {
    epvp::Options opt;
    opt.threads = threads;
    Run r;
    Stopwatch sw;
    Verifier v(dataset.config_text, opt);
    v.run_spf();
    r.violations = v.check_route_leak_free().size();
    r.wall = sw.seconds();
    const auto& st = v.stats();
    r.cpu = st.src_cpu_seconds + st.spf_cpu_seconds;
    r.nodes = st.bdd_nodes;
    r.pecs = st.total_pecs;
    return r;
  };

  // Warm-up pass so first-touch page faults and lazy static init don't bill
  // the serial run; then measure best-of-two per thread count.
  (void)run_at(1);
  auto best = [&](int threads) {
    Run a = run_at(threads);
    Run b = run_at(threads);
    return b.cpu < a.cpu ? b : a;
  };
  const Run r1 = best(1);
  const Run r4 = best(4);

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("perf_smoke region2: 1t wall=%.3fs cpu=%.3fs | 4t wall=%.3fs "
              "cpu=%.3fs | cores=%u\n",
              r1.wall, r1.cpu, r4.wall, r4.cpu, cores);

  if (r1.nodes != r4.nodes || r1.pecs != r4.pecs ||
      r1.violations != r4.violations) {
    std::fprintf(stderr,
                 "perf_smoke: DETERMINISM MISMATCH 1t vs 4t "
                 "(nodes %zu vs %zu, pecs %zu vs %zu, violations %zu vs %zu)\n",
                 r1.nodes, r4.nodes, r1.pecs, r4.pecs, r1.violations,
                 r4.violations);
    return 1;
  }

  // Absolute floor keeps timer/startup noise from dominating: region2 runs
  // in tens of milliseconds on a fast host.
  const double cpu_bound = 1.3 * r1.cpu + 0.05;
  if (r4.cpu > cpu_bound) {
    std::fprintf(stderr,
                 "perf_smoke: 4-thread CPU %.3fs exceeds 1.3x serial "
                 "(%.3fs, bound %.3fs)\n",
                 r4.cpu, r1.cpu, cpu_bound);
    return 1;
  }
  if (cores >= 4 && r4.wall > r1.wall + 0.05) {
    std::fprintf(stderr,
                 "perf_smoke: 4-thread wall %.3fs slower than serial %.3fs "
                 "on a %u-core host\n",
                 r4.wall, r1.wall, cores);
    return 1;
  }
  std::printf("perf_smoke: OK\n");
  return 0;
}
