// expresso_trace_check — validates a Chrome trace_event file produced by
// the obs tracer (EXPRESSO_TRACE).  Used by scripts/check.sh's trace smoke
// step and handy when hacking on the tracer itself.
//
//   expresso_trace_check out.json [--require-stages] [--min-events N]
//
// Checks: strict JSON parse, trace_event structure (name/ph/pid/tid/ts on
// every event, dur on "X"), and per-thread span nesting.  With
// --require-stages, additionally requires a span for each of the seven
// pipeline stages plus at least one EPVP round span and one BDD counter
// sample (the ISSUE 4 acceptance shape).
//
// Exit codes: 0 = valid, 1 = invalid trace, 2 = usage/IO error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/trace_check.hpp"

int main(int argc, char** argv) {
  std::string path;
  bool require_stages = false;
  std::size_t min_events = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-stages") == 0) {
      require_stages = true;
    } else if (std::strcmp(argv[i], "--min-events") == 0 && i + 1 < argc) {
      min_events = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: expresso_trace_check FILE [--require-stages] "
                   "[--min-events N]\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: expresso_trace_check FILE [--require-stages] "
                 "[--min-events N]\n");
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  expresso::obs::JsonValue root;
  std::string error;
  if (!expresso::obs::parse_json(buf.str(), root, error)) {
    std::fprintf(stderr, "%s: JSON parse error: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  expresso::obs::TraceStats stats;
  if (!expresso::obs::validate_trace(root, stats, error)) {
    std::fprintf(stderr, "%s: invalid trace: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  if (stats.events < min_events) {
    std::fprintf(stderr, "%s: only %zu span events (need >= %zu)\n",
                 path.c_str(), stats.events, min_events);
    return 1;
  }

  if (require_stages) {
    std::set<std::string> names;
    for (const auto& ev : root.find("traceEvents")->items) {
      names.insert(ev.find("name")->str);
    }
    const char* required[] = {"stage.parse",  "stage.topology",
                              "stage.universe", "stage.policies",
                              "stage.src",    "stage.spf",
                              "stage.verdicts", "epvp.round"};
    for (const char* name : required) {
      if (names.count(name) == 0) {
        std::fprintf(stderr, "%s: missing required span '%s'\n", path.c_str(),
                     name);
        return 1;
      }
    }
    if (stats.counter_samples == 0) {
      std::fprintf(stderr, "%s: no substrate counter samples\n", path.c_str());
      return 1;
    }
  }

  std::printf(
      "%s: OK (%zu spans, %zu counter samples, %zu instants, %zu threads)\n",
      path.c_str(), stats.events, stats.counter_samples, stats.instants,
      stats.threads);
  return 0;
}
