// expresso_trace_check — validates a Chrome trace_event file produced by
// the obs tracer (EXPRESSO_TRACE).  Used by scripts/check.sh's trace smoke
// step and handy when hacking on the tracer itself.
//
//   expresso_trace_check out.json [--require-stages] [--min-events N]
//                        [--trace-id ID [--expect-spans N,N,...]]
//   expresso_trace_check --prometheus metrics.txt
//
// Checks: strict JSON parse, trace_event structure (name/ph/pid/tid/ts on
// every event, dur on "X"), and per-thread span nesting.  With
// --require-stages, additionally requires a span for each of the seven
// pipeline stages plus at least one EPVP round span and one BDD counter
// sample (the ISSUE 4 acceptance shape).
//
// --trace-id ID requires at least one span whose args carry trace=ID, and
// --expect-spans (comma-separated span_id list, e.g. from a done frame's
// "profile" breakdown) requires every listed id to appear on a span tagged
// with that trace id — the cross-check that the service's per-request
// profile rows and the Chrome trace describe the same spans.
//
// --prometheus switches to a different job entirely: FILE is a Prometheus
// text-exposition document (GET /metrics), validated with the same parser
// the obs tests use.  check.sh's endpoint smoke step runs this.
//
// Exit codes: 0 = valid, 1 = invalid trace/exposition, 2 = usage/IO error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/prometheus.hpp"
#include "obs/trace_check.hpp"

namespace {

constexpr const char* kUsage =
    "usage: expresso_trace_check FILE [--require-stages] [--min-events N]\n"
    "                            [--trace-id ID [--expect-spans N,N,...]]\n"
    "       expresso_trace_check --prometheus FILE\n";

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

int check_prometheus(const std::string& path) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 2;
  }
  std::string error;
  std::map<std::string, double> samples;
  if (!expresso::obs::validate_prometheus(text, &error, &samples)) {
    std::fprintf(stderr, "%s: invalid exposition: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("%s: OK (%zu samples)\n", path.c_str(), samples.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string prometheus_path;
  std::string trace_id;
  std::vector<std::uint64_t> expect_spans;
  bool require_stages = false;
  std::size_t min_events = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-stages") == 0) {
      require_stages = true;
    } else if (std::strcmp(argv[i], "--min-events") == 0 && i + 1 < argc) {
      min_events = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--prometheus") == 0 && i + 1 < argc) {
      prometheus_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-id") == 0 && i + 1 < argc) {
      trace_id = argv[++i];
    } else if (std::strcmp(argv[i], "--expect-spans") == 0 && i + 1 < argc) {
      const std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos < list.size()) {
        std::size_t used = 0;
        unsigned long long id = 0;
        try {
          id = std::stoull(list.substr(pos), &used);
        } catch (const std::exception&) {
          std::fprintf(stderr, "bad --expect-spans list '%s'\n", list.c_str());
          return 2;
        }
        expect_spans.push_back(id);
        pos += used;
        if (pos < list.size() && list[pos] == ',') ++pos;
      }
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::fputs(kUsage, stderr);
      return 2;
    }
  }
  if (!prometheus_path.empty()) return check_prometheus(prometheus_path);
  if (!expect_spans.empty() && trace_id.empty()) {
    std::fprintf(stderr, "--expect-spans needs --trace-id\n");
    return 2;
  }
  if (path.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  expresso::obs::JsonValue root;
  std::string error;
  if (!expresso::obs::parse_json(buf.str(), root, error)) {
    std::fprintf(stderr, "%s: JSON parse error: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  expresso::obs::TraceStats stats;
  if (!expresso::obs::validate_trace(root, stats, error)) {
    std::fprintf(stderr, "%s: invalid trace: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  if (stats.events < min_events) {
    std::fprintf(stderr, "%s: only %zu span events (need >= %zu)\n",
                 path.c_str(), stats.events, min_events);
    return 1;
  }

  if (require_stages) {
    std::set<std::string> names;
    for (const auto& ev : root.find("traceEvents")->items) {
      names.insert(ev.find("name")->str);
    }
    const char* required[] = {"stage.parse",  "stage.topology",
                              "stage.universe", "stage.policies",
                              "stage.src",    "stage.spf",
                              "stage.verdicts", "epvp.round"};
    for (const char* name : required) {
      if (names.count(name) == 0) {
        std::fprintf(stderr, "%s: missing required span '%s'\n", path.c_str(),
                     name);
        return 1;
      }
    }
    if (stats.counter_samples == 0) {
      std::fprintf(stderr, "%s: no substrate counter samples\n", path.c_str());
      return 1;
    }
  }

  if (!trace_id.empty()) {
    // Every span the tracer tagged with this request's trace id, by span_id.
    std::set<std::uint64_t> tagged;
    for (const auto& ev : root.find("traceEvents")->items) {
      const auto* args = ev.find("args");
      if (args == nullptr) continue;
      const auto* trace = args->find("trace");
      if (trace == nullptr || trace->str != trace_id) continue;
      const auto* span = args->find("span_id");
      if (span != nullptr) {
        tagged.insert(static_cast<std::uint64_t>(span->num));
      }
    }
    if (tagged.empty()) {
      std::fprintf(stderr, "%s: no spans tagged trace=%s\n", path.c_str(),
                   trace_id.c_str());
      return 1;
    }
    for (std::uint64_t id : expect_spans) {
      if (tagged.count(id) == 0) {
        std::fprintf(stderr,
                     "%s: span_id %llu not found among the %zu spans tagged "
                     "trace=%s\n",
                     path.c_str(), static_cast<unsigned long long>(id),
                     tagged.size(), trace_id.c_str());
        return 1;
      }
    }
    std::printf("%s: trace=%s tags %zu spans (%zu expected ids present)\n",
                path.c_str(), trace_id.c_str(), tagged.size(),
                expect_spans.size());
  }

  std::printf(
      "%s: OK (%zu spans, %zu counter samples, %zu instants, %zu threads)\n",
      path.c_str(), stats.events, stats.counter_samples, stats.instants,
      stats.threads);
  return 0;
}
